// Reference trace-driven set-associative cache simulator.
//
// Not on the hot path: the fluid engine uses the analytic CacheModel. This
// simulator exists to (a) validate the analytic model's qualitative
// behaviour in the test suite (monotonicity in footprint/locality,
// compulsory floor, write-back accounting) and (b) support an optional
// trace mode for small kernels.
#pragma once

#include <cstdint>
#include <vector>

namespace tahoe::memsim {

struct CacheSimStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t load_misses = 0;
  std::uint64_t store_misses = 0;
  std::uint64_t writebacks = 0;

  std::uint64_t misses() const noexcept { return load_misses + store_misses; }
  double miss_rate() const noexcept {
    return accesses == 0
               ? 0.0
               : static_cast<double>(misses()) / static_cast<double>(accesses);
  }
};

/// Set-associative, write-back, write-allocate cache with true-LRU
/// replacement.
class CacheSim {
 public:
  CacheSim(std::uint64_t capacity_bytes, std::uint32_t associativity,
           std::uint32_t line_bytes);

  /// Simulate one access. Returns true on hit.
  bool access(std::uint64_t address, bool is_store);

  /// Drop all contents (keeps statistics).
  void flush();

  const CacheSimStats& stats() const noexcept { return stats_; }
  std::uint32_t line_bytes() const noexcept { return line_bytes_; }
  std::uint64_t sets() const noexcept { return sets_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // larger = more recently used
    bool valid = false;
    bool dirty = false;
  };

  std::uint32_t associativity_;
  std::uint32_t line_bytes_;
  std::uint64_t sets_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_;  // sets_ * associativity_, row-major by set
  CacheSimStats stats_;
};

}  // namespace tahoe::memsim
