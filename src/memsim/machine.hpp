// Machine model: cores + LLC + heterogeneous memory devices + copy engine.
//
// The Machine is the single place that converts application-level traffic
// (ObjectTraffic per data object, plus the object's current placement) into
// FlowSpecs for the fluid simulator. It is also what the Tahoe performance
// models are calibrated against — the models never peek at these internals;
// they only see sampled counters and the device datasheet numbers.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "memsim/access.hpp"
#include "memsim/cache_model.hpp"
#include "memsim/device.hpp"
#include "memsim/fluid.hpp"

namespace tahoe::memsim {

/// Copy-engine ceiling for one specific ordered tier pair, overriding the
/// machine-wide `copy_engine_bw` (e.g. an on-package DMA engine between
/// HBM and DRAM that streams faster than the core-staged memcpy to NVM).
struct CopyPathLimit {
  TierId src = 0;
  TierId dst = 0;
  double bw = 0.0;  ///< bytes/s serial floor for one copy stream
};

struct Machine {
  std::string name;
  double cpu_hz = 2.4e9;
  std::uint32_t workers = 16;       ///< task-executor worker threads
  double mlp = 10.0;                ///< outstanding-miss parallelism per core
  CacheModel llc{};                 ///< shared last-level cache
  /// Ordered memory hierarchy, fastest tier first. Index is the TierId;
  /// the last tier is the capacity tier (the default home of every
  /// object). The canonical two-tier machines index it as kDram / kNvm.
  std::vector<DeviceModel> devices;
  double copy_engine_bw = 0.0;      ///< bytes/s ceiling for one copy stream
  /// Per-(src, dst) copy-engine overrides; empty means every pair uses
  /// `copy_engine_bw`.
  std::vector<CopyPathLimit> copy_paths;
  std::uint64_t sample_interval = 1000;
  std::uint64_t seed = 0x7a40e5c0ffee1234ULL;

  std::size_t num_tiers() const noexcept { return devices.size(); }

  /// Tier accessor — the N-tier replacement for dram()/nvm().
  const DeviceModel& tier(TierId t) const { return devices.at(t); }

  /// Fastest (tier 0) and capacity (last) tiers of the hierarchy.
  TierId fastest_tier() const noexcept { return 0; }
  TierId capacity_tier() const noexcept {
    return static_cast<TierId>(devices.empty() ? 0 : devices.size() - 1);
  }

  /// Deprecated: two-tier convenience accessors. Prefer tier(TierId) (or
  /// tier(fastest_tier()) / tier(capacity_tier())) — these only make sense
  /// on two-tier machines. No in-tree caller remains; the attribute makes
  /// any new use a hard error under -Werror until they are removed.
  [[deprecated("use tier(kDram) instead")]] const DeviceModel& dram() const {
    return tier(kDram);
  }
  [[deprecated("use tier(kNvm) instead")]] const DeviceModel& nvm() const {
    return tier(kNvm);
  }

  /// Copy-engine ceiling for a (src, dst) copy: the per-pair override when
  /// one is registered, else the machine-wide copy_engine_bw.
  double copy_bw_for(TierId src, TierId dst) const noexcept;

  /// Main-memory traffic of one object access after the LLC filter.
  MemTraffic filtered(const ObjectTraffic& t,
                      std::uint64_t task_total_footprint) const;

  /// Build the fluid-flow specification for a task: `compute_seconds` of
  /// pure compute plus the listed (traffic, device) pairs.
  FlowSpec task_flow(
      double compute_seconds,
      const std::vector<std::pair<ObjectTraffic, DeviceId>>& accesses,
      std::uint64_t tag) const;

  /// Build the flow for an asynchronous migration copy of `bytes` from
  /// device `src` to device `dst`. The copy reads the source channel and
  /// writes the destination channel; its serial floor is set by the copy
  /// engine (one memcpy stream cannot exceed copy_engine_bw).
  FlowSpec copy_flow(std::uint64_t bytes, DeviceId src, DeviceId dst,
                     std::uint64_t tag) const;

  /// Duration of the task flow when running alone (no contention): used by
  /// oracle computations in tests.
  double uncontended_task_seconds(
      double compute_seconds,
      const std::vector<std::pair<ObjectTraffic, DeviceId>>& accesses) const;
};

namespace machines {

/// "Platform A"-style cluster node: 16 workers at 2.4 GHz, 20 MiB LLC,
/// DRAM limited to `dram_capacity`, paired with the given NVM model.
Machine platform_a(DeviceModel nvm, std::uint64_t dram_capacity);

/// Optane-PMM style two-socket box: 48 workers, 35.75 MiB LLC (per socket
/// model collapsed to one), DRAM limited to `dram_capacity`, Optane PM NVM.
Machine optane_platform(std::uint64_t dram_capacity);

/// Four-tier heterogeneous node: HBM + DRAM + CXL-attached DRAM + Optane
/// NVM, ordered fastest-first. `hbm_capacity`/`dram_capacity`/
/// `cxl_capacity` bound the three constrained tiers; the NVM capacity
/// tier holds everything. On-package HBM<->DRAM copies get a faster
/// per-pair copy engine than the core-staged paths to CXL/NVM.
Machine cxl_platform(std::uint64_t hbm_capacity, std::uint64_t dram_capacity,
                     std::uint64_t cxl_capacity,
                     std::uint64_t nvm_capacity = 0);

}  // namespace machines
}  // namespace tahoe::memsim
