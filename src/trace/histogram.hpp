// Log-bucketed latency/duration histograms for the metrics registry.
//
// A Histogram is a fixed array of 65 power-of-two buckets over uint64
// values (bucket 0 holds zeros; bucket b >= 1 holds [2^(b-1), 2^b - 1]),
// so the record path is wait-free: one relaxed fetch_add on the bucket,
// one on the running sum, and a relaxed CAS loop for the max. No
// allocation, no locks, no floating point — safe from any thread,
// including the executor's hot path.
//
// Snapshots are plain structs that merge bucket-wise, which is what makes
// per-worker or per-run histograms aggregatable after the fact.
// Percentiles come from the snapshot via linear interpolation inside the
// crossing bucket — deterministic, and within a factor-of-2 bound of the
// true value by construction.
//
// Values are dimensionless uint64s; the runtime's convention is
// *nanoseconds* (record_seconds converts). Simulated paths record virtual
// nanoseconds, real paths wall-clock nanoseconds — mirroring the two time
// bases of the tracer.
//
// Recording sites gate on histograms_enabled() (one relaxed load), the
// same overhead discipline as Tracer::enabled(): compiled in, near-free
// when off.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace tahoe::trace {

/// Point-in-time copy of a histogram. Mergeable; all derived statistics
/// (count, percentiles) are computed from here, never from the live
/// atomics, so one snapshot yields one coherent set of numbers.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 65;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t b : buckets) n += b;
    return n;
  }
  bool empty() const noexcept { return count() == 0; }

  /// Lower edge of bucket `b` (0 for the zero bucket).
  static std::uint64_t bucket_lo(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Inclusive upper edge of bucket `b`.
  static std::uint64_t bucket_hi(std::size_t b) noexcept {
    if (b == 0) return 0;
    if (b >= kBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  /// Value at quantile `q` in [0, 1], linearly interpolated inside the
  /// crossing bucket and clamped to the observed max. 0 when empty.
  std::uint64_t percentile(double q) const noexcept;

  std::uint64_t p50() const noexcept { return percentile(0.50); }
  std::uint64_t p90() const noexcept { return percentile(0.90); }
  std::uint64_t p99() const noexcept { return percentile(0.99); }
  /// Mean of recorded values (0 when empty).
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum) / static_cast<double>(n);
  }

  /// Bucket-wise accumulation (sum adds, max takes the larger).
  void merge(const HistogramSnapshot& other) noexcept;
};

/// The live, concurrently-recordable histogram. Address-stable for the
/// registry's lifetime, like Counter.
class Histogram {
 public:
  static std::size_t bucket_of(std::uint64_t value) noexcept {
    // 0 -> 0; otherwise bit_width in [1, 64] indexes buckets 1..64.
    return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  }

  /// Wait-free except for the (rare, bounded-contention) max update.
  void record(std::uint64_t value) noexcept {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (value > cur && !max_.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }

  /// Convenience for durations: seconds -> whole nanoseconds (negative
  /// inputs clamp to 0 so a non-monotonic clock cannot corrupt a bucket).
  void record_seconds(double seconds) noexcept {
    record(seconds <= 0.0 ? 0
                          : static_cast<std::uint64_t>(seconds * 1e9));
  }

  HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
      buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Process-wide switch for the histogram recording sites, mirroring
/// Tracer::enabled(): binaries turn it on alongside --trace-out /
/// --report-json so bare runs pay only the relaxed load per site.
bool histograms_enabled() noexcept;
void set_histograms_enabled(bool on) noexcept;

}  // namespace tahoe::trace
