// Minimal JSON support for the trace/report exporters and their tests.
//
// JsonWriter streams syntactically valid JSON with correct string escaping
// and comma placement — no intermediate DOM, so exporting a large trace is
// one pass. JsonValue/parse_json is the matching reader used by the
// round-trip tests and the trace-validation ctest; it accepts the full
// JSON grammar the writers can produce (objects, arrays, strings, finite
// numbers, booleans, null).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace tahoe::trace {

/// Escape `s` into a JSON string literal (including the quotes).
std::string json_escape(const std::string& s);

/// Forward-only JSON emitter. Callers nest begin_object/begin_array and
/// close with end(); key() must precede every member value inside an
/// object. Misuse (e.g. a bare value where a key is required) is a
/// contract violation, checked in debug builds by the writers' own tests
/// rather than runtime asserts here.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key + value in one call.
  template <typename T>
  JsonWriter& kv(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

 private:
  void comma();

  std::ostream& os_;
  /// One entry per open container: whether a value was already written
  /// (controls comma emission).
  std::vector<bool> has_item_;
  bool after_key_ = false;
};

/// Parsed JSON DOM for tests/validation.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const noexcept { return type == Type::Object; }
  bool is_array() const noexcept { return type == Type::Array; }
  bool is_string() const noexcept { return type == Type::String; }
  bool is_number() const noexcept { return type == Type::Number; }

  /// Object member access; throws std::out_of_range when absent.
  const JsonValue& at(const std::string& k) const { return object.at(k); }
  bool has(const std::string& k) const {
    return type == Type::Object && object.count(k) != 0;
  }
};

/// Parse a complete JSON document. Throws std::runtime_error (with byte
/// offset) on malformed input or trailing garbage.
JsonValue parse_json(const std::string& text);

}  // namespace tahoe::trace
