#include "trace/chrome_export.hpp"

#include <algorithm>
#include <fstream>
#include <set>

#include "common/log.hpp"
#include "trace/json.hpp"

namespace tahoe::trace {

namespace {

constexpr double kMicros = 1e6;

void write_args(JsonWriter& w, const TraceEvent& ev) {
  w.key("args").begin_object();
  for (std::uint8_t a = 0; a < ev.num_args; ++a) {
    w.kv(ev.arg_key[a], ev.arg_val[a]);
  }
  w.end_object();
}

}  // namespace

void write_chrome_trace(
    std::ostream& os, const std::vector<TraceEvent>& events,
    const std::vector<std::pair<TrackId, std::string>>& track_names,
    std::uint64_t dropped_events) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("tahoe").begin_object();
  w.kv("schema_version", std::uint64_t{2});
  w.kv("dropped_events", dropped_events);
  w.end_object();
  w.key("traceEvents").begin_array();

  // Metadata: name every track that appears, so Perfetto shows labels
  // instead of raw tids. sort_index keeps workers above the machinery.
  std::set<TrackId> tracks;
  for (const TraceEvent& ev : events) tracks.insert(ev.track);
  for (const auto& [track, name] : track_names) tracks.insert(track);
  for (const TrackId track : tracks) {
    std::string label = "track " + std::to_string(track);
    for (const auto& [t, n] : track_names) {
      if (t == track) {
        label = n;
        break;
      }
    }
    w.begin_object();
    w.kv("ph", "M");
    w.kv("pid", std::uint64_t{1});
    w.kv("tid", std::uint64_t{track});
    w.kv("name", "thread_name");
    w.key("args").begin_object().kv("name", label).end_object();
    w.end_object();
    w.begin_object();
    w.kv("ph", "M");
    w.kv("pid", std::uint64_t{1});
    w.kv("tid", std::uint64_t{track});
    w.kv("name", "thread_sort_index");
    w.key("args")
        .begin_object()
        .kv("sort_index", std::uint64_t{track})
        .end_object();
    w.end_object();
  }

  // Emit in timestamp order: rings are drained per-thread, so the raw
  // stream is only ordered within a thread.
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events.size());
  for (const TraceEvent& ev : events) ordered.push_back(&ev);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->ts < b->ts;
                   });

  for (const TraceEvent* ev : ordered) {
    w.begin_object();
    w.kv("pid", std::uint64_t{1});
    w.kv("tid", std::uint64_t{ev->track});
    w.kv("name", ev->name);
    w.kv("ts", ev->ts * kMicros);
    switch (ev->kind) {
      case EventKind::Complete:
        w.kv("ph", "X");
        w.kv("dur", ev->dur * kMicros);
        write_args(w, *ev);
        break;
      case EventKind::Instant:
        w.kv("ph", "i");
        w.kv("s", "t");  // thread-scoped instant
        write_args(w, *ev);
        break;
      case EventKind::Counter:
        w.kv("ph", "C");
        write_args(w, *ev);
        break;
    }
    w.end_object();
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

bool export_chrome_trace(Tracer& tracer, const std::string& path) {
  return export_chrome_trace(tracer, path, {});
}

bool export_chrome_trace(Tracer& tracer, const std::string& path,
                         const std::vector<TraceEvent>& retained) {
  std::ofstream os(path);
  if (!os) {
    TAHOE_WARN("cannot open trace output file '" << path << "'");
    return false;
  }
  std::vector<TraceEvent> events = retained;
  const std::vector<TraceEvent> fresh = tracer.drain();
  events.insert(events.end(), fresh.begin(), fresh.end());
  const std::uint64_t dropped = tracer.dropped();
  write_chrome_trace(os, events, tracer.track_names(), dropped);
  if (dropped > 0) {
    TAHOE_WARN("trace rings dropped " << dropped
                                      << " events (enlarge ring capacity)");
  }
  return static_cast<bool>(os);
}

}  // namespace tahoe::trace
