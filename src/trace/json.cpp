#include "trace/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tahoe::trace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_item_.empty()) {
    if (has_item_.back()) os_ << ',';
    has_item_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  os_ << '{';
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_item_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  os_ << '[';
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_item_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  os_ << json_escape(k) << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  os_ << json_escape(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; clamp to null so documents stay parseable.
    os_ << "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  os_ << "null";
  return *this;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::String;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode (surrogate pairs unsupported; the writers only
          // escape control characters, which are single code units).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::Number;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number '" + text_.substr(start, pos_ - start) + "'");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace tahoe::trace
