#include "trace/analyze.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/table.hpp"

namespace tahoe::trace {
namespace {

constexpr double kMicros = 1e6;

struct Span {
  std::uint64_t track = 0;
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  const JsonValue* args = nullptr;

  double end() const noexcept { return ts + dur; }
};

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::uint64_t arg_u64(const Span& s, const char* key) {
  if (s.args == nullptr || !s.args->is_object() || !s.args->has(key)) return 0;
  const JsonValue& v = s.args->at(key);
  return v.is_number() ? static_cast<std::uint64_t>(v.number) : 0;
}

bool has_arg(const Span& s, const char* key) {
  return s.args != nullptr && s.args->is_object() && s.args->has(key);
}

std::string str_or(const JsonValue& obj, const char* key,
                   const std::string& def = "") {
  if (!obj.has(key)) return def;
  const JsonValue& v = obj.at(key);
  return v.is_string() ? v.string : def;
}

double num_or(const JsonValue& obj, const char* key, double def = 0.0) {
  if (!obj.has(key)) return def;
  const JsonValue& v = obj.at(key);
  return v.is_number() ? v.number : def;
}

}  // namespace

Analysis analyze(const JsonValue& trace_doc, const JsonValue* report,
                 const JsonValue* explain) {
  Analysis a;

  if (trace_doc.has("tahoe") && trace_doc.at("tahoe").is_object()) {
    const JsonValue& meta = trace_doc.at("tahoe");
    a.schema_version =
        static_cast<std::uint64_t>(num_or(meta, "schema_version"));
    a.dropped_events =
        static_cast<std::uint64_t>(num_or(meta, "dropped_events"));
  }

  // ---- collect spans -------------------------------------------------
  std::vector<Span> groups;
  std::vector<Span> tasks;
  std::vector<Span> stalls;
  std::vector<Span> copies;
  std::map<std::uint64_t, std::string> track_labels;
  bool any_span = false;
  double t_min = 0.0, t_max = 0.0;

  if (trace_doc.has("traceEvents") && trace_doc.at("traceEvents").is_array()) {
    for (const JsonValue& ev : trace_doc.at("traceEvents").array) {
      if (!ev.is_object()) continue;
      const std::string ph = str_or(ev, "ph");
      const auto tid = static_cast<std::uint64_t>(num_or(ev, "tid"));
      if (ph == "M") {
        if (str_or(ev, "name") == "thread_name" && ev.has("args")) {
          track_labels[tid] = str_or(ev.at("args"), "name");
        }
        continue;
      }
      if (ph != "X") continue;  // instants/counters carry no duration
      Span s;
      s.track = tid;
      s.name = str_or(ev, "name");
      s.ts = num_or(ev, "ts") / kMicros;
      s.dur = num_or(ev, "dur") / kMicros;
      s.args = ev.has("args") ? &ev.at("args") : nullptr;
      if (!any_span || s.ts < t_min) t_min = s.ts;
      if (!any_span || s.end() > t_max) t_max = s.end();
      any_span = true;

      if (starts_with(s.name, "group ")) {
        groups.push_back(std::move(s));
      } else if (s.name == "migration-stall") {
        stalls.push_back(std::move(s));
      } else if (starts_with(s.name, "migrate") &&
                 s.name.find("rejected") == std::string::npos) {
        copies.push_back(std::move(s));
      } else if (has_arg(s, "task")) {
        tasks.push_back(std::move(s));
      }
      // Other spans ("profile", custom) don't enter the accounting.
    }
  }

  a.start_seconds = any_span ? t_min : 0.0;
  a.end_seconds = any_span ? t_max : 0.0;
  a.makespan_seconds = a.end_seconds - a.start_seconds;
  a.group_spans = groups.size();
  a.task_spans = tasks.size();

  // ---- data movement -------------------------------------------------
  for (const Span& c : copies) {
    a.copy_busy_seconds += c.dur;
    a.bytes_moved += arg_u64(c, "bytes");
  }
  a.migrations = copies.size();
  for (const Span& s : stalls) a.stall_seconds += s.dur;
  if (a.copy_busy_seconds > 0.0) {
    const double overlapped = a.copy_busy_seconds - a.stall_seconds;
    a.overlap_efficiency =
        overlapped > 0.0 ? overlapped / a.copy_busy_seconds : 0.0;
  }

  // ---- critical path -------------------------------------------------
  // Groups run serially (the phase protocol barriers between them), so the
  // longest task inside each group span chains into the path; exposed
  // migration stalls sit between groups and add directly.
  std::sort(groups.begin(), groups.end(),
            [](const Span& x, const Span& y) { return x.ts < y.ts; });
  for (const Span& g : groups) {
    double longest = 0.0;
    for (const Span& t : tasks) {
      if (t.ts >= g.ts && t.ts < g.end()) longest = std::max(longest, t.dur);
    }
    a.critical_path_seconds += longest;
  }
  if (groups.empty() && !tasks.empty()) {
    // Ungrouped trace: fall back to the longest task as the floor.
    double longest = 0.0;
    for (const Span& t : tasks) longest = std::max(longest, t.dur);
    a.critical_path_seconds = longest;
  }
  a.critical_path_seconds += a.stall_seconds;
  if (a.makespan_seconds > 0.0) {
    a.critical_path_fraction = a.critical_path_seconds / a.makespan_seconds;
  }

  // ---- per-worker utilization ----------------------------------------
  std::map<std::uint64_t, WorkerUtilization> lanes;
  for (const Span& t : tasks) {
    WorkerUtilization& w = lanes[t.track];
    w.track = t.track;
    ++w.tasks;
    w.busy_seconds += t.dur;
  }
  for (auto& [track, w] : lanes) {
    const auto it = track_labels.find(track);
    w.name = it != track_labels.end() ? it->second
                                      : "track " + std::to_string(track);
    if (a.makespan_seconds > 0.0) {
      w.utilization = w.busy_seconds / a.makespan_seconds;
    }
    a.workers.push_back(std::move(w));
  }

  // ---- report echoes -------------------------------------------------
  if (report != nullptr && report->is_object()) {
    a.has_report = true;
    a.report_schema_version =
        static_cast<std::uint64_t>(num_or(*report, "schema_version"));
    a.workload = str_or(*report, "workload");
    a.policy = str_or(*report, "policy");
    a.strategy = str_or(*report, "strategy");
    a.report_overlap_fraction = num_or(*report, "overlap_fraction");
    if (report->has("tiers") && report->at("tiers").is_array()) {
      for (const JsonValue& t : report->at("tiers").array) {
        if (t.is_string()) a.tier_names.push_back(t.string);
      }
    }
    // Schema-v4 serving reports carry a per-tenant section.
    if (report->has("tenants") && report->at("tenants").is_array()) {
      const auto digest_u64 = [](const JsonValue& obj, const char* digest,
                                 const char* field) -> std::uint64_t {
        if (!obj.has(digest) || !obj.at(digest).is_object()) return 0;
        return static_cast<std::uint64_t>(num_or(obj.at(digest), field));
      };
      for (const JsonValue& t : report->at("tenants").array) {
        if (!t.is_object()) continue;
        TenantAnalysisRow row;
        row.name = str_or(t, "name");
        row.priority = num_or(t, "priority");
        row.quota_bytes = static_cast<std::uint64_t>(num_or(t, "quota_bytes"));
        row.fast_bytes = static_cast<std::uint64_t>(num_or(t, "fast_bytes"));
        row.total_bytes = static_cast<std::uint64_t>(num_or(t, "total_bytes"));
        row.requests = static_cast<std::uint64_t>(num_or(t, "requests"));
        row.dropped = static_cast<std::uint64_t>(num_or(t, "dropped"));
        row.latency_p50_ns = digest_u64(t, "request_latency", "p50");
        row.latency_p99_ns = digest_u64(t, "request_latency", "p99");
        row.queue_p50_ns = digest_u64(t, "queue_wait", "p50");
        row.queue_p99_ns = digest_u64(t, "queue_wait", "p99");
        row.service_p50_ns = digest_u64(t, "service_time", "p50");
        row.service_p99_ns = digest_u64(t, "service_time", "p99");
        a.tenant_rows.push_back(std::move(row));
      }
    }
  }

  // ---- placement rationale (final plan) ------------------------------
  if (explain != nullptr && explain->is_object() && explain->has("plans") &&
      explain->at("plans").is_array() &&
      !explain->at("plans").array.empty()) {
    a.has_explain = true;
    if (a.strategy.empty()) a.strategy = str_or(*explain, "strategy");
    if (a.workload.empty()) a.workload = str_or(*explain, "workload");
    if (a.policy.empty()) a.policy = str_or(*explain, "policy");
    if (a.report_schema_version == 0) {
      a.report_schema_version =
          static_cast<std::uint64_t>(num_or(*explain, "schema_version"));
    }
    if (a.tier_names.empty() && explain->has("tiers") &&
        explain->at("tiers").is_array()) {
      for (const JsonValue& t : explain->at("tiers").array) {
        if (t.is_string()) a.tier_names.push_back(t.string);
      }
    }
    const JsonValue& plan = explain->at("plans").array.back();
    a.local_gain = num_or(plan, "local_gain");
    a.global_gain = num_or(plan, "global_gain");
    a.predicted_gain = num_or(plan, "predicted_gain");
    if (plan.has("candidates") && plan.at("candidates").is_array()) {
      for (const JsonValue& c : plan.at("candidates").array) {
        if (!c.is_object()) continue;
        RationaleRow row;
        row.object = str_or(c, "object");
        row.chunk = static_cast<std::uint64_t>(num_or(c, "chunk"));
        row.pass = str_or(c, "pass");
        row.group = static_cast<std::uint64_t>(num_or(c, "group"));
        row.sensitivity = str_or(c, "sensitivity");
        row.benefit = num_or(c, "benefit");
        row.cost = num_or(c, "cost");
        row.extra_cost = num_or(c, "extra_cost");
        row.value = num_or(c, "value");
        row.bytes = static_cast<std::uint64_t>(num_or(c, "bytes"));
        // v2 candidates are DRAM fills and carry no tier key: tier 0.
        row.tier = static_cast<std::uint64_t>(num_or(c, "tier", 0.0));
        row.accepted = c.has("accepted") && c.at("accepted").boolean;
        row.reason = str_or(c, "reason");
        a.rationale.push_back(std::move(row));
      }
    }
    // Planned per-tier occupancy: distinct accepted units of the winning
    // pass (falling back to every accepted row when no pass matches the
    // strategy, e.g. older documents without a pass tag).
    std::set<std::tuple<std::string, std::uint64_t, std::uint64_t>> seen;
    bool strategy_matched = false;
    for (const RationaleRow& r : a.rationale) {
      if (r.accepted && r.pass == a.strategy) {
        strategy_matched = true;
        break;
      }
    }
    for (const RationaleRow& r : a.rationale) {
      if (!r.accepted) continue;
      if (strategy_matched && r.pass != a.strategy) continue;
      if (!seen.insert({r.object, r.chunk, r.tier}).second) continue;
      if (a.planned_tier_bytes.size() <= r.tier) {
        a.planned_tier_bytes.resize(r.tier + 1, 0);
      }
      a.planned_tier_bytes[r.tier] += r.bytes;
    }
  }

  return a;
}

void write_analysis_json(std::ostream& os, const Analysis& a) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", a.schema_version);
  w.kv("dropped_events", a.dropped_events);
  w.kv("makespan_seconds", a.makespan_seconds);
  w.kv("critical_path_seconds", a.critical_path_seconds);
  w.kv("critical_path_fraction", a.critical_path_fraction);
  w.kv("copy_busy_seconds", a.copy_busy_seconds);
  w.kv("stall_seconds", a.stall_seconds);
  w.kv("overlap_efficiency", a.overlap_efficiency);
  w.kv("migrations", a.migrations);
  w.kv("bytes_moved", a.bytes_moved);
  w.kv("group_spans", a.group_spans);
  w.kv("task_spans", a.task_spans);
  w.key("workers").begin_array();
  for (const WorkerUtilization& u : a.workers) {
    w.begin_object();
    w.kv("track", u.track);
    w.kv("name", u.name);
    w.kv("tasks", u.tasks);
    w.kv("busy_seconds", u.busy_seconds);
    w.kv("utilization", u.utilization);
    w.end_object();
  }
  w.end_array();
  if (a.has_report) {
    w.key("report").begin_object();
    w.kv("schema_version", a.report_schema_version);
    w.kv("workload", a.workload);
    w.kv("policy", a.policy);
    w.kv("strategy", a.strategy);
    w.kv("overlap_fraction", a.report_overlap_fraction);
    if (!a.tier_names.empty()) {
      w.key("tiers").begin_array();
      for (const std::string& n : a.tier_names) w.value(n);
      w.end_array();
    }
    // Emitted only for serving (schema-v4) reports, so analyses of v2/v3
    // artifacts stay byte-identical to what they were before tenancy.
    if (!a.tenant_rows.empty()) {
      w.key("tenants").begin_array();
      for (const TenantAnalysisRow& t : a.tenant_rows) {
        w.begin_object();
        w.kv("name", t.name);
        w.kv("priority", t.priority);
        w.kv("quota_bytes", t.quota_bytes);
        w.kv("fast_bytes", t.fast_bytes);
        w.kv("total_bytes", t.total_bytes);
        w.kv("requests", t.requests);
        w.kv("dropped", t.dropped);
        w.kv("latency_p50_ns", t.latency_p50_ns);
        w.kv("latency_p99_ns", t.latency_p99_ns);
        w.kv("queue_p50_ns", t.queue_p50_ns);
        w.kv("queue_p99_ns", t.queue_p99_ns);
        w.kv("service_p50_ns", t.service_p50_ns);
        w.kv("service_p99_ns", t.service_p99_ns);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  if (a.has_explain) {
    w.key("plan").begin_object();
    w.kv("strategy", a.strategy);
    w.kv("local_gain", a.local_gain);
    w.kv("global_gain", a.global_gain);
    w.kv("predicted_gain", a.predicted_gain);
    w.key("tier_occupancy").begin_array();
    for (std::size_t t = 0; t < a.planned_tier_bytes.size(); ++t) {
      w.begin_object();
      w.kv("tier", static_cast<std::uint64_t>(t));
      if (t < a.tier_names.size()) w.kv("name", a.tier_names[t]);
      w.kv("bytes", a.planned_tier_bytes[t]);
      w.end_object();
    }
    w.end_array();
    w.key("rationale").begin_array();
    for (const RationaleRow& r : a.rationale) {
      w.begin_object();
      w.kv("object", r.object);
      w.kv("chunk", r.chunk);
      w.kv("pass", r.pass);
      w.kv("group", r.group);
      w.kv("tier", r.tier);
      w.kv("sensitivity", r.sensitivity);
      w.kv("benefit", r.benefit);
      w.kv("cost", r.cost);
      w.kv("extra_cost", r.extra_cost);
      w.kv("value", r.value);
      w.kv("bytes", r.bytes);
      w.kv("accepted", r.accepted);
      w.kv("reason", r.reason);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  os << '\n';
}

void write_analysis_tables(std::ostream& os, const Analysis& a) {
  {
    Table t({"metric", "value"});
    if (a.has_report) {
      t.add_row({"workload", a.workload});
      t.add_row({"policy", a.policy});
    }
    if (!a.strategy.empty()) t.add_row({"strategy", a.strategy});
    t.add_row({"makespan (s)", Table::num(a.makespan_seconds, 6)});
    t.add_row({"critical path (s)", Table::num(a.critical_path_seconds, 6)});
    t.add_row({"critical path frac", Table::num(a.critical_path_fraction, 4)});
    t.add_row({"copy busy (s)", Table::num(a.copy_busy_seconds, 6)});
    t.add_row({"stall (s)", Table::num(a.stall_seconds, 6)});
    t.add_row({"overlap efficiency", Table::num(a.overlap_efficiency, 4)});
    t.add_row({"migrations", std::to_string(a.migrations)});
    t.add_row({"bytes moved", std::to_string(a.bytes_moved)});
    t.add_row({"group spans", std::to_string(a.group_spans)});
    t.add_row({"task spans", std::to_string(a.task_spans)});
    t.add_row({"dropped events", std::to_string(a.dropped_events)});
    t.print(os);
  }
  if (!a.workers.empty()) {
    os << "\nWorker utilization\n";
    Table t({"lane", "tasks", "busy (s)", "utilization"});
    for (const WorkerUtilization& u : a.workers) {
      t.add_row({u.name, std::to_string(u.tasks),
                 Table::num(u.busy_seconds, 6), Table::num(u.utilization, 4)});
    }
    t.print(os);
  }
  if (!a.tenant_rows.empty()) {
    os << "\nTenants (serving report)\n";
    Table t({"tenant", "prio", "quota MiB", "fast MiB", "total MiB", "reqs",
             "queued", "lat p50 ms", "lat p99 ms", "wait p99 ms",
             "svc p99 ms"});
    const auto mib = [](std::uint64_t bytes) {
      return Table::num(static_cast<double>(bytes) / (1024.0 * 1024.0));
    };
    const auto ms = [](std::uint64_t ns) {
      return Table::num(static_cast<double>(ns) / 1e6, 3);
    };
    for (const TenantAnalysisRow& r : a.tenant_rows) {
      t.add_row({r.name, Table::num(r.priority), mib(r.quota_bytes),
                 mib(r.fast_bytes), mib(r.total_bytes),
                 std::to_string(r.requests), std::to_string(r.dropped),
                 ms(r.latency_p50_ns), ms(r.latency_p99_ns),
                 ms(r.queue_p99_ns), ms(r.service_p99_ns)});
    }
    t.print(os);
  }
  if (a.has_explain) {
    os << "\nPlacement rationale (final plan: strategy=" << a.strategy
       << ", local gain " << Table::num(a.local_gain, 6) << " s, global gain "
       << Table::num(a.global_gain, 6) << " s)\n";
    Table t({"object", "chunk", "pass", "group", "tier", "sensitivity",
             "benefit", "cost", "extra", "value", "bytes", "verdict"});
    const auto tier_label = [&a](std::uint64_t tier) {
      return tier < a.tier_names.size() ? a.tier_names[tier]
                                        : std::to_string(tier);
    };
    for (const RationaleRow& r : a.rationale) {
      t.add_row({r.object, std::to_string(r.chunk), r.pass,
                 std::to_string(r.group), tier_label(r.tier), r.sensitivity,
                 Table::num(r.benefit, 6), Table::num(r.cost, 6),
                 Table::num(r.extra_cost, 6), Table::num(r.value, 6),
                 std::to_string(r.bytes),
                 r.accepted ? "accepted" : r.reason});
    }
    t.print(os);
    if (!a.planned_tier_bytes.empty()) {
      os << "\nPlanned tier occupancy (accepted units of the winning "
            "pass)\n";
      Table occ({"tier", "name", "bytes"});
      for (std::size_t tier = 0; tier < a.planned_tier_bytes.size(); ++tier) {
        occ.add_row({std::to_string(tier), tier_label(tier),
                     std::to_string(a.planned_tier_bytes[tier])});
      }
      occ.print(os);
    }
  }
}

// ---- telemetry timeline ------------------------------------------------

namespace {

std::uint64_t num_u64(const JsonValue& doc, const std::string& key) {
  return doc.has(key) ? static_cast<std::uint64_t>(doc.at(key).number) : 0;
}

double num_f64(const JsonValue& doc, const std::string& key) {
  return doc.has(key) ? doc.at(key).number : 0.0;
}

}  // namespace

Timeline analyze_timeline(const std::string& jsonl_text) {
  Timeline tl;
  std::istringstream ss(jsonl_text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(ss, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue doc;
    try {
      doc = parse_json(line);
    } catch (const std::exception& e) {
      throw std::runtime_error("telemetry line " + std::to_string(line_no) +
                               ": " + e.what());
    }
    if (!doc.is_object() || !doc.has("type")) continue;
    const std::string& type = doc.at("type").string;
    if (type == "phase") {
      TimelinePhase phase;
      phase.seq = num_u64(doc, "seq");
      if (doc.has("label")) phase.label = doc.at("label").string;
      tl.phases.push_back(std::move(phase));
    } else if (type == "interval") {
      TimelineInterval row;
      row.seq = num_u64(doc, "seq");
      row.t = num_f64(doc, "t");
      row.dt = num_f64(doc, "dt");
      if (doc.has("counters")) {
        for (const auto& [name, cell] : doc.at("counters").object) {
          const std::uint64_t delta = num_u64(cell, "delta");
          if (name == "sim.tasks_executed" || name == "executor.tasks") {
            row.tasks_delta += delta;
          } else if (starts_with(name, "migrate.bytes.")) {
            row.bytes_delta += delta;
          }
        }
      }
      if (row.dt > 0.0) {
        row.tasks_rate = static_cast<double>(row.tasks_delta) / row.dt;
        row.bytes_rate = static_cast<double>(row.bytes_delta) / row.dt;
      }
      tl.total_tasks += row.tasks_delta;
      tl.total_bytes += row.bytes_delta;
      tl.duration_seconds = std::max(tl.duration_seconds, row.t);
      tl.rows.push_back(row);
    } else if (type == "breach") {
      TimelineBreach breach;
      breach.seq = num_u64(doc, "seq");
      breach.t = num_f64(doc, "t");
      if (doc.has("kind")) breach.kind = doc.at("kind").string;
      if (doc.has("rule")) breach.rule = doc.at("rule").string;
      breach.observed = num_f64(doc, "observed");
      breach.limit = num_f64(doc, "limit");
      breach.intervals = num_u64(doc, "intervals");
      // Breach lines follow the interval that triggered them (same seq).
      if (!tl.rows.empty() && tl.rows.back().seq == breach.seq) {
        ++tl.rows.back().breaches;
      }
      tl.breaches.push_back(std::move(breach));
    }
  }
  return tl;
}

void write_timeline_json(std::ostream& os, const Timeline& tl) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "tahoe_timeline_v1");
  w.kv("intervals", static_cast<std::uint64_t>(tl.rows.size()));
  w.kv("duration_seconds", tl.duration_seconds);
  w.kv("total_tasks", tl.total_tasks);
  w.kv("total_bytes", tl.total_bytes);
  w.key("phases").begin_array();
  for (const TimelinePhase& p : tl.phases) {
    w.begin_object();
    w.kv("seq", p.seq);
    w.kv("label", p.label);
    w.end_object();
  }
  w.end_array();
  w.key("breaches").begin_array();
  for (const TimelineBreach& b : tl.breaches) {
    w.begin_object();
    w.kv("seq", b.seq);
    w.kv("t", b.t);
    w.kv("kind", b.kind);
    if (!b.rule.empty()) {
      w.kv("rule", b.rule);
      w.kv("observed", b.observed);
      w.kv("limit", b.limit);
    }
    if (b.intervals != 0) w.kv("intervals", b.intervals);
    w.end_object();
  }
  w.end_array();
  w.key("rows").begin_array();
  for (const TimelineInterval& r : tl.rows) {
    w.begin_object();
    w.kv("seq", r.seq);
    w.kv("t", r.t);
    w.kv("dt", r.dt);
    w.kv("tasks_delta", r.tasks_delta);
    w.kv("tasks_rate", r.tasks_rate);
    w.kv("bytes_delta", r.bytes_delta);
    w.kv("bytes_rate", r.bytes_rate);
    w.kv("breaches", r.breaches);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_timeline_table(std::ostream& os, const Timeline& tl) {
  {
    Table t({"metric", "value"});
    t.add_row({"intervals", std::to_string(tl.rows.size())});
    t.add_row({"duration (s)", Table::num(tl.duration_seconds, 4)});
    t.add_row({"phases", std::to_string(tl.phases.size())});
    t.add_row({"breaches", std::to_string(tl.breaches.size())});
    t.add_row({"total tasks", std::to_string(tl.total_tasks)});
    t.add_row({"total bytes moved", std::to_string(tl.total_bytes)});
    t.print(os);
  }
  if (!tl.rows.empty()) {
    os << "\nInterval rates\n";
    Table t({"seq", "t (s)", "tasks/s", "MiB/s", "events"});
    std::size_t next_phase = 0;
    for (const TimelineInterval& r : tl.rows) {
      // A phase marker with seq S precedes the interval that carries S.
      std::string events;
      while (next_phase < tl.phases.size() &&
             tl.phases[next_phase].seq <= r.seq) {
        if (!events.empty()) events += ", ";
        events += "| phase: " + tl.phases[next_phase].label;
        ++next_phase;
      }
      if (r.breaches != 0) {
        if (!events.empty()) events += ", ";
        events += "BREACH x" + std::to_string(r.breaches);
      }
      t.add_row({std::to_string(r.seq), Table::num(r.t, 4),
                 Table::num(r.tasks_rate, 1),
                 Table::num(r.bytes_rate / (1024.0 * 1024.0), 2), events});
    }
    t.print(os);
    for (; next_phase < tl.phases.size(); ++next_phase) {
      os << "(trailing phase: " << tl.phases[next_phase].label << ")\n";
    }
  }
  if (!tl.breaches.empty()) {
    os << "\nBreaches\n";
    Table t({"seq", "t (s)", "kind", "rule", "observed", "limit"});
    for (const TimelineBreach& b : tl.breaches) {
      t.add_row({std::to_string(b.seq), Table::num(b.t, 4), b.kind,
                 b.kind == "stall"
                     ? std::to_string(b.intervals) + " zero-progress intervals"
                     : b.rule,
                 Table::num(b.observed, 3), Table::num(b.limit, 3)});
    }
    t.print(os);
  }
}

// ---- segment stats -----------------------------------------------------

namespace {

constexpr const char* kArenaPrefix = "hms.segment.arena.";

std::uint64_t metric_u64(const JsonValue& v) {
  return v.is_number() ? static_cast<std::uint64_t>(v.number) : 0;
}

SegmentArenaRow& arena_row(SegmentStats& s, const std::string& name) {
  for (SegmentArenaRow& row : s.arenas) {
    if (row.name == name) return row;
  }
  s.arenas.push_back(SegmentArenaRow{name, 0, 0});
  return s.arenas.back();
}

}  // namespace

SegmentStats analyze_segment_stats(const JsonValue& report) {
  SegmentStats s;
  if (report.has("counters") && report.at("counters").is_object()) {
    for (const auto& [name, v] : report.at("counters").object) {
      if (name == "hms.segment.allocs") {
        s.allocs = metric_u64(v);
        s.present = true;
      } else if (name == "hms.segment.frees") {
        s.frees = metric_u64(v);
        s.present = true;
      }
    }
  }
  if (report.has("gauges") && report.at("gauges").is_object()) {
    for (const auto& [name, v] : report.at("gauges").object) {
      if (!starts_with(name, "hms.segment.")) continue;
      s.present = true;
      if (name == "hms.segment.slots_live") {
        s.slots_live = metric_u64(v);
      } else if (name == "hms.segment.slot_capacity") {
        s.slot_capacity = metric_u64(v);
      } else if (name == "hms.segment.bytes_used") {
        s.bytes_used = metric_u64(v);
      } else if (name == "hms.segment.bytes_capacity") {
        s.bytes_capacity = metric_u64(v);
      } else if (name == "hms.segment.freelist_blocks") {
        s.freelist_blocks = metric_u64(v);
      } else if (name == "hms.segment.freelist_bytes") {
        s.freelist_bytes = metric_u64(v);
      } else if (starts_with(name, kArenaPrefix)) {
        // hms.segment.arena.<name>.<metric>; arena names contain no dots.
        const std::string tail = name.substr(std::strlen(kArenaPrefix));
        const std::size_t dot = tail.rfind('.');
        if (dot == std::string::npos || dot == 0) continue;
        const std::string arena = tail.substr(0, dot);
        const std::string metric = tail.substr(dot + 1);
        if (metric == "meta_bytes") {
          arena_row(s, arena).meta_bytes = metric_u64(v);
        } else if (metric == "free_ranges") {
          arena_row(s, arena).free_ranges = metric_u64(v);
        }
      }
    }
  }
  return s;
}

void write_segment_stats_json(std::ostream& os, const SegmentStats& s) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "tahoe_segment_stats_v1");
  w.kv("present", s.present);
  w.kv("allocs", s.allocs);
  w.kv("frees", s.frees);
  w.kv("slots_live", s.slots_live);
  w.kv("slot_capacity", s.slot_capacity);
  w.kv("bytes_used", s.bytes_used);
  w.kv("bytes_capacity", s.bytes_capacity);
  w.kv("occupancy", s.occupancy());
  w.kv("freelist_blocks", s.freelist_blocks);
  w.kv("freelist_bytes", s.freelist_bytes);
  w.key("arenas").begin_array();
  for (const SegmentArenaRow& row : s.arenas) {
    w.begin_object();
    w.kv("name", row.name);
    w.kv("meta_bytes", row.meta_bytes);
    w.kv("free_ranges", row.free_ranges);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_segment_stats_table(std::ostream& os, const SegmentStats& s) {
  if (!s.present) {
    os << "(no hms.segment.* metrics in this report — run with a "
          "segment-hosted registry)\n";
    return;
  }
  {
    Table t({"metric", "value"});
    t.add_row({"segment allocs", std::to_string(s.allocs)});
    t.add_row({"segment frees", std::to_string(s.frees)});
    t.add_row({"live slots", std::to_string(s.slots_live) + " / " +
                                 std::to_string(s.slot_capacity)});
    t.add_row({"metadata bytes", std::to_string(s.bytes_used) + " / " +
                                     std::to_string(s.bytes_capacity)});
    t.add_row({"occupancy", Table::num(s.occupancy() * 100.0, 3) + " %"});
    t.add_row({"freelist blocks", std::to_string(s.freelist_blocks)});
    t.add_row({"freelist bytes", std::to_string(s.freelist_bytes)});
    t.print(os);
  }
  if (!s.arenas.empty()) {
    os << "\nArena metadata\n";
    Table t({"arena", "meta bytes", "free ranges"});
    for (const SegmentArenaRow& row : s.arenas) {
      t.add_row({row.name, std::to_string(row.meta_bytes),
                 std::to_string(row.free_ranges)});
    }
    t.print(os);
  }
}

}  // namespace tahoe::trace
