#include "trace/trace.hpp"

#include <chrono>

namespace tahoe::trace {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EventRing::EventRing(std::size_t capacity_pow2)
    : slots_(round_up_pow2(capacity_pow2 < 2 ? 2 : capacity_pow2)),
      mask_(slots_.size() - 1) {}

bool EventRing::try_push(const TraceEvent& ev) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[head & mask_] = ev;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

void EventRing::drain(std::vector<TraceEvent>& out) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  for (std::uint64_t i = tail; i < head; ++i) {
    out.push_back(slots_[i & mask_]);
  }
  tail_.store(head, std::memory_order_release);
}

namespace {
// Unique per-Tracer id so the thread-local ring cache cannot alias a new
// Tracer constructed at a destroyed one's address.
std::atomic<std::uint64_t> next_tracer_id{1};
}  // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : ring_capacity_(round_up_pow2(ring_capacity < 2 ? 2 : ring_capacity)),
      id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

EventRing& Tracer::ring_for_this_thread() {
  // One cache entry per thread: re-registers when the thread first emits
  // into a *different* Tracer instance (tests construct their own).
  struct Cache {
    std::uint64_t owner = 0;
    EventRing* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.owner != id_) {
    const std::lock_guard<std::mutex> lock(mutex_);
    rings_.push_back(std::make_unique<EventRing>(ring_capacity_));
    cache.owner = id_;
    cache.ring = rings_.back().get();
  }
  return *cache.ring;
}

void Tracer::emit(const TraceEvent& ev) {
  if (!enabled()) return;
  ring_for_this_thread().try_push(ev);
}

void Tracer::complete(TrackId track, const char* name, double ts, double dur) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.kind = EventKind::Complete;
  ev.track = track;
  ev.ts = ts;
  ev.dur = dur;
  ev.set_name(name);
  ring_for_this_thread().try_push(ev);
}

void Tracer::complete(TrackId track, const char* name, double ts, double dur,
                      const char* k0, std::uint64_t v0) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.kind = EventKind::Complete;
  ev.track = track;
  ev.ts = ts;
  ev.dur = dur;
  ev.set_name(name);
  ev.add_arg(k0, v0);
  ring_for_this_thread().try_push(ev);
}

void Tracer::complete(TrackId track, const char* name, double ts, double dur,
                      const char* k0, std::uint64_t v0, const char* k1,
                      std::uint64_t v1) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.kind = EventKind::Complete;
  ev.track = track;
  ev.ts = ts;
  ev.dur = dur;
  ev.set_name(name);
  ev.add_arg(k0, v0);
  ev.add_arg(k1, v1);
  ring_for_this_thread().try_push(ev);
}

void Tracer::instant(TrackId track, const char* name, double ts) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.kind = EventKind::Instant;
  ev.track = track;
  ev.ts = ts;
  ev.set_name(name);
  ring_for_this_thread().try_push(ev);
}

void Tracer::instant(TrackId track, const char* name, double ts,
                     const char* k0, std::uint64_t v0) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.kind = EventKind::Instant;
  ev.track = track;
  ev.ts = ts;
  ev.set_name(name);
  ev.add_arg(k0, v0);
  ring_for_this_thread().try_push(ev);
}

void Tracer::instant(TrackId track, const char* name, double ts,
                     const char* k0, std::uint64_t v0, const char* k1,
                     std::uint64_t v1) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.kind = EventKind::Instant;
  ev.track = track;
  ev.ts = ts;
  ev.set_name(name);
  ev.add_arg(k0, v0);
  ev.add_arg(k1, v1);
  ring_for_this_thread().try_push(ev);
}

void Tracer::counter(TrackId track, const char* name, double ts,
                     std::uint64_t value) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.kind = EventKind::Counter;
  ev.track = track;
  ev.ts = ts;
  ev.set_name(name);
  ev.add_arg("value", value);
  ring_for_this_thread().try_push(ev);
}

void Tracer::set_track_name(TrackId track, const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [t, n] : track_names_) {
    if (t == track) {
      n = name;
      return;
    }
  }
  track_names_.emplace_back(track, name);
}

std::vector<std::pair<TrackId, std::string>> Tracer::track_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return track_names_;
}

std::vector<TraceEvent> Tracer::drain() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  for (const std::unique_ptr<EventRing>& ring : rings_) {
    ring->drain(out);
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const std::unique_ptr<EventRing>& ring : rings_) {
    total += ring->dropped();
  }
  return total;
}

std::size_t Tracer::num_rings() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rings_.size();
}

Tracer& global() {
  static Tracer tracer;
  return tracer;
}

double now_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}

}  // namespace tahoe::trace
