#include "trace/counters.hpp"

namespace tahoe::trace {

Counter& CounterRegistry::get(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

void CounterRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->set(0);
}

std::size_t CounterRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size();
}

CounterRegistry& global_counters() {
  static CounterRegistry registry;
  return registry;
}

}  // namespace tahoe::trace
