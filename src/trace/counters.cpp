#include "trace/counters.hpp"

namespace tahoe::trace {

Counter& CounterRegistry::get_cell(const std::string& name, bool gauge) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Cell>& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Cell>();
    slot->is_gauge = gauge;  // first registration decides the kind
  }
  return slot->counter;
}

Counter& CounterRegistry::get(const std::string& name) {
  return get_cell(name, /*gauge=*/false);
}

Counter& CounterRegistry::gauge(const std::string& name) {
  return get_cell(name, /*gauge=*/true);
}

Histogram& CounterRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    out.emplace_back(name, cell->counter.value());
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
CounterRegistry::snapshot_counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, cell] : counters_) {
    if (!cell->is_gauge) out.emplace_back(name, cell->counter.value());
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
CounterRegistry::snapshot_gauges() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, cell] : counters_) {
    if (cell->is_gauge) out.emplace_back(name, cell->counter.value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
CounterRegistry::snapshot_histograms() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h->snapshot());
  }
  return out;
}

void CounterRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, cell] : counters_) cell->counter.set(0);
  for (auto& [name, h] : histograms_) h->reset();
}

std::size_t CounterRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size();
}

CounterRegistry& global_counters() {
  static CounterRegistry registry;
  return registry;
}

}  // namespace tahoe::trace
