#include "trace/histogram.hpp"

namespace tahoe::trace {

namespace {
std::atomic<bool> g_histograms_enabled{false};
}  // namespace

bool histograms_enabled() noexcept {
  return g_histograms_enabled.load(std::memory_order_relaxed);
}

void set_histograms_enabled(bool on) noexcept {
  g_histograms_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t HistogramSnapshot::percentile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q <= 0.0) return 0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th value, 1-based; q == 1 must land on the last value.
  const double exact = q * static_cast<double>(n);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  if (rank == 0) rank = 1;

  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] >= rank) {
      const std::uint64_t lo = bucket_lo(b);
      const std::uint64_t hi = bucket_hi(b);
      // Interpolate by the rank's position inside this bucket. The
      // arithmetic stays in doubles only for the fraction so the result
      // cannot exceed hi.
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(buckets[b]);
      const std::uint64_t width = hi - lo;
      std::uint64_t v = lo + static_cast<std::uint64_t>(
                                 static_cast<double>(width) * frac);
      if (v > max && max >= lo) v = max;  // clamp to observed max
      return v;
    }
    seen += buckets[b];
  }
  return max;  // unreachable with a consistent snapshot
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
  sum += other.sum;
  if (other.max > max) max = other.max;
}

}  // namespace tahoe::trace
