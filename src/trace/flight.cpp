#include "trace/flight.hpp"

#include <csignal>
#include <fstream>

#include "common/log.hpp"
#include "trace/counters.hpp"
#include "trace/json.hpp"

namespace tahoe::trace {

namespace {

const char* kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::Complete:
      return "complete";
    case EventKind::Instant:
      return "instant";
    case EventKind::Counter:
      return "counter";
  }
  return "unknown";
}

void write_event(JsonWriter& w, const TraceEvent& ev) {
  w.begin_object();
  w.kv("ts", ev.ts);
  if (ev.kind == EventKind::Complete) w.kv("dur", ev.dur);
  w.kv("track", std::uint64_t{ev.track});
  w.kv("kind", kind_name(ev.kind));
  w.kv("name", std::string(ev.name));
  w.key("args").begin_object();
  for (std::uint8_t a = 0; a < ev.num_args; ++a) {
    w.kv(ev.arg_key[a], ev.arg_val[a]);
  }
  w.end_object();
  w.end_object();
}

// Fatal-signal hook: dump whatever the rings hold, then re-raise with the
// default disposition so the process still dies with the right status.
// Dumping takes locks and allocates — not async-signal-safe — but on the
// crash path a best-effort capture beats losing the black box entirely.
void on_fatal_signal(int sig) {
  std::signal(sig, SIG_DFL);
  flight().dump("signal:" + std::to_string(sig), 0.0);
  std::raise(sig);
}

}  // namespace

void FlightRecorder::configure(const Config& config) {
  bool arm = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    config_ = config;
    events_.clear();
    lines_.clear();
    retained_.clear();
    dumps_ = 0;
    arm = !config.out_path.empty();
  }
  armed_.store(arm, std::memory_order_relaxed);
  if (arm) {
    static bool signals_hooked = false;
    if (!signals_hooked) {
      signals_hooked = true;
      std::signal(SIGSEGV, on_fatal_signal);
      std::signal(SIGABRT, on_fatal_signal);
    }
  }
}

void FlightRecorder::disarm() {
  armed_.store(false, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  lines_.clear();
  retained_.clear();
  config_ = Config{};
}

void FlightRecorder::record_events(const std::vector<TraceEvent>& events) {
  if (!armed()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const TraceEvent& ev : events) {
    events_.push_back(ev);
    if (events_.size() > config_.max_events) events_.pop_front();
  }
  if (config_.retain_events) {
    retained_.insert(retained_.end(), events.begin(), events.end());
  }
}

void FlightRecorder::record_line(const std::string& line) {
  if (!armed()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(line);
  if (lines_.size() > config_.max_intervals) lines_.pop_front();
}

bool FlightRecorder::dump(const std::string& reason, double t) {
  if (!armed()) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ofstream os(config_.out_path, std::ios::trunc);
  if (!os) {
    TAHOE_WARN("cannot open flight dump file '" << config_.out_path << "'");
    return false;
  }
  ++dumps_;
  {
    // The document's top-level object is left open here: the telemetry
    // lines are complete JSON objects already, so they are spliced in
    // verbatim as the "intervals" array below instead of being re-parsed
    // through the writer.
    JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "tahoe_flight_v1");
    w.kv("reason", reason);
    w.kv("t", t);
    w.kv("dump", dumps_);
    w.kv("dropped_trace_events", global().dropped());
    w.key("events").begin_array();
    for (const TraceEvent& ev : events_) write_event(w, ev);
    w.end_array();
  }
  os << ",\"intervals\":[";
  bool first = true;
  for (const std::string& line : lines_) {
    if (!first) os << ',';
    first = false;
    os << line;
  }
  os << "]}\n";
  os.close();
  if (!os) {
    TAHOE_WARN("failed writing flight dump '" << config_.out_path << "'");
    return false;
  }
  global_counters().get("flight.dumps").increment();
  return true;
}

std::vector<TraceEvent> FlightRecorder::take_retained() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.swap(retained_);
  return out;
}

std::uint64_t FlightRecorder::dumps() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dumps_;
}

std::size_t FlightRecorder::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::size_t FlightRecorder::line_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lines_.size();
}

FlightRecorder& flight() {
  static FlightRecorder recorder;
  return recorder;
}

}  // namespace tahoe::trace
