// Structured event tracing for the runtime.
//
// The tracer records spans (task executions, migration copies), instant
// events (planner decisions, reprofiles) and counter samples (queue depths,
// bytes moved) into per-thread lock-free ring buffers, then exports them as
// Chrome trace_event JSON (chrome://tracing / Perfetto) via
// chrome_export.hpp. Two time bases share one event stream: the real
// Executor and MigrationEngine stamp events with wall-clock seconds
// (now_seconds()), while the SimExecutor and Runtime stamp events with
// virtual simulation time — a single run uses one base or the other, never
// both.
//
// Overhead discipline: emission is a single relaxed atomic load when
// tracing is disabled (the common case), and a wait-free single-producer
// ring push when enabled. A full ring *drops* the event and counts the drop
// — tracing never blocks or allocates on the hot path. Events carry
// fixed-size name/arg storage so a TraceEvent is trivially copyable.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tahoe::trace {

/// Logical timeline tracks. Workers use their index directly; the
/// machinery tracks live in a reserved high range so they never collide
/// with worker ids.
using TrackId = std::uint32_t;
inline constexpr TrackId kMigrationTrack = 0xfff0;  ///< helper-thread engine
inline constexpr TrackId kPlannerTrack = 0xfff1;    ///< decisions/adaptivity
inline constexpr TrackId kRuntimeTrack = 0xfff2;    ///< phases, counters

enum class EventKind : std::uint8_t {
  Complete,  ///< span with explicit start + duration
  Instant,   ///< point event
  Counter,   ///< sampled numeric value (args[0] holds it)
};

/// One trace record. Trivially copyable; names and argument keys are
/// truncated into fixed-size storage so ring slots never own memory.
struct TraceEvent {
  static constexpr std::size_t kNameCap = 40;
  static constexpr std::size_t kKeyCap = 16;
  static constexpr std::size_t kMaxArgs = 4;

  double ts = 0.0;   ///< seconds (wall or virtual, see header comment)
  double dur = 0.0;  ///< Complete spans only
  TrackId track = 0;
  EventKind kind = EventKind::Instant;
  std::uint8_t num_args = 0;
  char name[kNameCap] = {};
  char arg_key[kMaxArgs][kKeyCap] = {};
  std::uint64_t arg_val[kMaxArgs] = {};

  void set_name(const char* n) {
    std::strncpy(name, n, kNameCap - 1);
    name[kNameCap - 1] = '\0';
  }
  void add_arg(const char* key, std::uint64_t value) {
    if (num_args >= kMaxArgs) return;
    std::strncpy(arg_key[num_args], key, kKeyCap - 1);
    arg_key[num_args][kKeyCap - 1] = '\0';
    arg_val[num_args] = value;
    ++num_args;
  }
};

/// Wait-free single-producer / single-consumer ring of TraceEvents. The
/// owning thread pushes; drain() is called by the exporter (any thread).
/// A full ring drops the event and bumps the drop counter instead of
/// blocking — see the header comment.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity_pow2);

  /// Producer side (owning thread only). Returns false on drop.
  bool try_push(const TraceEvent& ev);

  /// Consumer side: move every published event into `out`, in push order.
  void drain(std::vector<TraceEvent>& out);

  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_;
  // head_: next write index (producer-owned); tail_: next read index
  // (consumer-owned). Both monotonically increase; occupancy = head - tail.
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// The tracer: a set of per-thread rings plus track metadata. Emission
/// goes through the calling thread's ring, located via a thread_local
/// cache, so concurrent emitters never contend.
class Tracer {
 public:
  /// `ring_capacity` is rounded up to a power of two; it bounds the events
  /// buffered per emitting thread between drains.
  explicit Tracer(std::size_t ring_capacity = 1 << 16);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Record an event (no-op when disabled). Wait-free when enabled.
  void emit(const TraceEvent& ev);

  /// Convenience emitters; all are disabled-checked internally.
  void complete(TrackId track, const char* name, double ts, double dur);
  void complete(TrackId track, const char* name, double ts, double dur,
                const char* k0, std::uint64_t v0);
  void complete(TrackId track, const char* name, double ts, double dur,
                const char* k0, std::uint64_t v0, const char* k1,
                std::uint64_t v1);
  void instant(TrackId track, const char* name, double ts);
  void instant(TrackId track, const char* name, double ts, const char* k0,
               std::uint64_t v0);
  void instant(TrackId track, const char* name, double ts, const char* k0,
               std::uint64_t v0, const char* k1, std::uint64_t v1);
  void counter(TrackId track, const char* name, double ts,
               std::uint64_t value);

  /// Human-readable track label for the exporter (thread-safe).
  void set_track_name(TrackId track, const std::string& name);
  std::vector<std::pair<TrackId, std::string>> track_names() const;

  /// Collect every buffered event from every thread's ring, in per-thread
  /// push order (threads are concatenated, not interleaved). Emitters may
  /// run concurrently; their in-flight events land in the next drain.
  std::vector<TraceEvent> drain();

  /// Total events dropped on full rings since construction.
  std::uint64_t dropped() const;

  /// Number of per-thread rings registered so far (test hook).
  std::size_t num_rings() const;

 private:
  EventRing& ring_for_this_thread();

  std::size_t ring_capacity_;
  std::uint64_t id_;  ///< process-unique; keys the thread-local ring cache
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  // guards rings_ growth and track_names_
  std::vector<std::unique_ptr<EventRing>> rings_;
  std::vector<std::pair<TrackId, std::string>> track_names_;
};

/// Process-wide tracer used by the runtime's instrumentation points.
/// Disabled by default; binaries enable it when --trace-out is given.
Tracer& global();

/// Monotonic wall-clock seconds since the first call (steady_clock based).
/// Used by the real Executor / MigrationEngine instrumentation.
double now_seconds();

}  // namespace tahoe::trace
