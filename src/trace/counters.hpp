// Runtime metrics registry: named monotonic counters with cheap updates
// and coherent snapshots.
//
// Counters are registered once (mutex-protected name lookup) and then
// updated lock-free through the returned handle — the hot path is one
// relaxed fetch_add. The runtime snapshots the registry at iteration
// boundaries to feed both the trace timeline (counter tracks) and the
// machine-readable run export (report_json.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tahoe::trace {

/// One monotonic counter. Address-stable for the registry's lifetime.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  /// For gauges (queue depth): overwrite rather than accumulate.
  void set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class CounterRegistry {
 public:
  /// Find-or-create; the reference stays valid until the registry dies.
  Counter& get(const std::string& name);

  /// (name, value) pairs sorted by name. Values are relaxed reads — each
  /// is individually coherent; the set is a point-in-time sample.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

  /// Zero every registered counter (between benchmark configurations).
  void reset();

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

/// Process-wide registry used by the runtime's instrumentation points.
CounterRegistry& global_counters();

}  // namespace tahoe::trace
