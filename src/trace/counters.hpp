// Runtime metrics registry: named monotonic counters, gauges and
// log-bucketed histograms with cheap updates and coherent snapshots.
//
// Metrics are registered once (mutex-protected name lookup) and then
// updated lock-free through the returned handle — the hot path is one
// relaxed fetch_add (or, for histograms, one bucket fetch_add). The
// runtime snapshots the registry at iteration boundaries to feed both the
// trace timeline (counter tracks) and the machine-readable run export
// (report.hpp).
//
// Counters vs gauges. A counter is monotonic (add/increment): its exported
// value is a cumulative total and deltas between snapshots are meaningful.
// A gauge is a last-write-wins level (set): queue depths, occupancy. The
// registry tags each metric at first registration so exporters and the
// post-run analyzer never treat a queue-depth sample as a cumulative
// total — they are serialized under separate "counters"/"gauges" keys.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "trace/histogram.hpp"

namespace tahoe::trace {

/// One metric cell. Address-stable for the registry's lifetime. Whether it
/// is a counter or a gauge is a property of its registration, not of the
/// cell: add() for counters, set() for gauges.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  /// For gauges (queue depth): overwrite rather than accumulate.
  void set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class CounterRegistry {
 public:
  /// Find-or-create a monotonic counter; the reference stays valid until
  /// the registry dies. If `name` was first registered as a gauge, the
  /// gauge tag sticks (first registration wins).
  Counter& get(const std::string& name);

  /// Find-or-create a gauge (last-write-wins level, updated with set()).
  Counter& gauge(const std::string& name);

  /// Find-or-create a histogram (log-bucketed durations; see
  /// histogram.hpp).
  Histogram& histogram(const std::string& name);

  /// (name, value) pairs sorted by name — counters AND gauges together,
  /// for consumers that sample everything onto trace counter tracks.
  /// Values are relaxed reads: each is individually coherent; the set is a
  /// point-in-time sample.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

  /// Monotonic counters only — what belongs in a cumulative-totals export.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot_counters()
      const;

  /// Gauges only — point-in-time levels, meaningless to difference.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot_gauges() const;

  /// All histograms, sorted by name.
  std::vector<std::pair<std::string, HistogramSnapshot>> snapshot_histograms()
      const;

  /// Zero every registered metric (between benchmark configurations).
  void reset();

  /// Number of scalar metrics (counters + gauges).
  std::size_t size() const;

 private:
  struct Cell {
    Counter counter;
    bool is_gauge = false;
  };

  Counter& get_cell(const std::string& name, bool gauge);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Cell>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide registry used by the runtime's instrumentation points.
CounterRegistry& global_counters();

}  // namespace tahoe::trace
