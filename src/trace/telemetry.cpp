#include "trace/telemetry.hpp"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "common/assert.hpp"
#include "common/fault.hpp"
#include "common/flags.hpp"
#include "common/log.hpp"
#include "trace/flight.hpp"
#include "trace/json.hpp"
#include "trace/trace.hpp"

namespace tahoe::trace {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool is_hist_stat(const std::string& stat) {
  return stat == "p50" || stat == "p90" || stat == "p99" || stat == "mean" ||
         stat == "count" || stat == "max";
}

double hist_stat(const HistogramSnapshot& h, const std::string& stat) {
  if (stat == "p50") return static_cast<double>(h.p50());
  if (stat == "p90") return static_cast<double>(h.p90());
  if (stat == "p99") return static_cast<double>(h.p99());
  if (stat == "mean") return h.mean();
  if (stat == "count") return static_cast<double>(h.count());
  return static_cast<double>(h.max);
}

}  // namespace

bool SloRule::holds(double observed) const noexcept {
  switch (op) {
    case Op::Lt:
      return observed < limit;
    case Op::Le:
      return observed <= limit;
    case Op::Gt:
      return observed > limit;
    case Op::Ge:
      return observed >= limit;
  }
  return true;
}

SloRule parse_slo_rule(const std::string& spec) {
  SloRule rule;
  rule.text = trim(spec);
  const std::string& s = rule.text;
  const std::size_t colon = s.find(':');
  TAHOE_REQUIRE(colon != std::string::npos,
                "SLO rule '" + spec + "' lacks a kind: prefix");
  const std::string kind = s.substr(0, colon);
  if (kind == "counter") {
    rule.kind = SloRule::Kind::Counter;
  } else if (kind == "gauge") {
    rule.kind = SloRule::Kind::Gauge;
  } else if (kind == "hist") {
    rule.kind = SloRule::Kind::Hist;
  } else {
    TAHOE_REQUIRE(false, "SLO rule '" + spec +
                             "' kind must be counter, gauge or hist");
  }

  // Locate the comparison operator (two-char forms first).
  std::size_t op_pos = std::string::npos;
  std::size_t op_len = 0;
  for (std::size_t i = colon + 1; i < s.size(); ++i) {
    if (s[i] == '<' || s[i] == '>') {
      op_pos = i;
      op_len = (i + 1 < s.size() && s[i + 1] == '=') ? 2 : 1;
      break;
    }
  }
  TAHOE_REQUIRE(op_pos != std::string::npos,
                "SLO rule '" + spec + "' lacks a comparison (< <= > >=)");
  const std::string op = s.substr(op_pos, op_len);
  rule.op = op == "<"    ? SloRule::Op::Lt
            : op == "<=" ? SloRule::Op::Le
            : op == ">"  ? SloRule::Op::Gt
                         : SloRule::Op::Ge;

  // metric[.stat] — metric names contain dots, so only a known stat
  // suffix is split off; everything else stays part of the name.
  std::string lhs = trim(s.substr(colon + 1, op_pos - colon - 1));
  TAHOE_REQUIRE(!lhs.empty(), "SLO rule '" + spec + "' lacks a metric");
  const std::size_t dot = lhs.rfind('.');
  std::string stat = dot == std::string::npos ? "" : lhs.substr(dot + 1);
  switch (rule.kind) {
    case SloRule::Kind::Counter:
      if (stat == "rate" || stat == "delta") {
        rule.stat = stat;
        lhs.resize(dot);
      } else {
        rule.stat = "rate";
      }
      break;
    case SloRule::Kind::Gauge:
      if (stat == "level") lhs.resize(dot);
      rule.stat = "level";
      break;
    case SloRule::Kind::Hist:
      if (is_hist_stat(stat)) {
        rule.stat = stat;
        lhs.resize(dot);
      } else {
        rule.stat = "p99";
      }
      break;
  }
  rule.metric = lhs;
  TAHOE_REQUIRE(!rule.metric.empty(),
                "SLO rule '" + spec + "' lacks a metric");

  // value[unit]: ns/us/ms/s scale to nanoseconds (the histogram unit).
  const std::string rhs = trim(s.substr(op_pos + op_len));
  TAHOE_REQUIRE(!rhs.empty(), "SLO rule '" + spec + "' lacks a limit");
  char* end = nullptr;
  rule.limit = std::strtod(rhs.c_str(), &end);
  TAHOE_REQUIRE(end != rhs.c_str(),
                "SLO rule '" + spec + "' has a malformed limit");
  const std::string unit = trim(std::string(end));
  if (unit == "ns" || unit.empty()) {
    // raw units
  } else if (unit == "us") {
    rule.limit *= 1e3;
  } else if (unit == "ms") {
    rule.limit *= 1e6;
  } else if (unit == "s") {
    rule.limit *= 1e9;
  } else {
    TAHOE_REQUIRE(false,
                  "SLO rule '" + spec + "' has unknown unit '" + unit + "'");
  }
  return rule;
}

std::vector<SloRule> parse_slo_rules(const std::string& csv) {
  std::vector<SloRule> rules;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (trim(item).empty()) continue;
    rules.push_back(parse_slo_rule(item));
  }
  return rules;
}

bool slo_observed(const SloRule& rule, const IntervalSample& sample,
                  double* observed) {
  switch (rule.kind) {
    case SloRule::Kind::Counter: {
      // A counter absent from the sample simply did not move: evaluate
      // with a zero delta, so throughput-floor rules catch quiet
      // intervals.
      std::uint64_t delta = 0;
      for (const auto& [name, d] : sample.counter_deltas) {
        if (name == rule.metric) {
          delta = d;
          break;
        }
      }
      *observed = rule.stat == "delta"
                      ? static_cast<double>(delta)
                      : (sample.dt > 0.0
                             ? static_cast<double>(delta) / sample.dt
                             : 0.0);
      return true;
    }
    case SloRule::Kind::Gauge:
      // An unregistered gauge has no level; skip rather than invent one.
      for (const auto& [name, v] : sample.gauges) {
        if (name == rule.metric) {
          *observed = static_cast<double>(v);
          return true;
        }
      }
      return false;
    case SloRule::Kind::Hist:
      // Percentiles are statements about this interval's recordings; an
      // interval with none is skipped, not treated as zero latency.
      for (const auto& [name, h] : sample.hist_deltas) {
        if (name == rule.metric) {
          *observed = hist_stat(h, rule.stat);
          return true;
        }
      }
      return false;
  }
  return false;
}

void DeltaTracker::reset(const CounterRegistry& registry) {
  prev_counters_.clear();
  prev_hists_.clear();
  for (const auto& [name, value] : registry.snapshot_counters()) {
    prev_counters_[name] = value;
  }
  for (const auto& [name, snap] : registry.snapshot_histograms()) {
    prev_hists_[name] = snap;
  }
}

IntervalSample DeltaTracker::advance(const CounterRegistry& registry,
                                     double t, double dt) {
  IntervalSample sample;
  sample.t = t;
  sample.dt = dt;
  for (const auto& [name, value] : registry.snapshot_counters()) {
    const auto it = prev_counters_.find(name);
    const std::uint64_t prev =
        it == prev_counters_.end() ? 0 : it->second;
    // A shrunken counter means the registry was reset: restart from the
    // new value instead of underflowing.
    const std::uint64_t delta = value >= prev ? value - prev : value;
    prev_counters_[name] = value;
    if (delta != 0) sample.counter_deltas.emplace_back(name, delta);
  }
  sample.gauges = registry.snapshot_gauges();
  for (const auto& [name, snap] : registry.snapshot_histograms()) {
    const auto it = prev_hists_.find(name);
    HistogramSnapshot delta;
    if (it == prev_hists_.end()) {
      delta = snap;
    } else {
      const HistogramSnapshot& prev = it->second;
      bool reset = snap.sum < prev.sum;
      for (std::size_t b = 0; !reset && b < HistogramSnapshot::kBuckets;
           ++b) {
        reset = snap.buckets[b] < prev.buckets[b];
      }
      if (reset) {
        delta = snap;
      } else {
        for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
          delta.buckets[b] = snap.buckets[b] - prev.buckets[b];
        }
        delta.sum = snap.sum - prev.sum;
        // The cumulative max is only an upper bound for this interval,
        // but percentile() clamps against it, which is the safe side.
        delta.max = snap.max;
      }
    }
    prev_hists_[name] = snap;
    if (delta.count() != 0) sample.hist_deltas.emplace_back(name, delta);
  }
  return sample;
}

namespace {

std::string serialize_interval(std::uint64_t seq,
                               const IntervalSample& sample) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("type", "interval");
  w.kv("seq", seq);
  w.kv("t", sample.t);
  w.kv("dt", sample.dt);
  w.key("counters").begin_object();
  for (const auto& [name, delta] : sample.counter_deltas) {
    w.key(name).begin_object();
    w.kv("delta", delta);
    w.kv("rate", sample.dt > 0.0
                     ? static_cast<double>(delta) / sample.dt
                     : 0.0);
    w.end_object();
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : sample.gauges) w.kv(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : sample.hist_deltas) {
    w.key(name).begin_object();
    w.kv("count", h.count());
    w.kv("p50", h.p50());
    w.kv("p90", h.p90());
    w.kv("p99", h.p99());
    w.kv("max", h.max);
    w.kv("mean", h.mean());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return os.str();
}

std::string serialize_breach(std::uint64_t seq, double t, const SloRule& rule,
                             double observed) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("type", "breach");
  w.kv("seq", seq);
  w.kv("t", t);
  w.kv("kind", "slo");
  w.kv("rule", rule.text);
  w.kv("metric", rule.metric);
  w.kv("stat", rule.stat);
  w.kv("observed", observed);
  w.kv("limit", rule.limit);
  w.end_object();
  return os.str();
}

std::string serialize_stall(std::uint64_t seq, double t, int intervals) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("type", "breach");
  w.kv("seq", seq);
  w.kv("t", t);
  w.kv("kind", "stall");
  w.kv("intervals", static_cast<std::int64_t>(intervals));
  w.end_object();
  return os.str();
}

std::string serialize_phase(std::uint64_t seq, const std::string& label) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("type", "phase");
  w.kv("seq", seq);
  w.kv("label", label);
  w.end_object();
  return os.str();
}

}  // namespace

void TelemetrySampler::configure(const TelemetryConfig& config) {
  shutdown();
  TAHOE_REQUIRE(config.interval_seconds > 0.0,
                "telemetry interval must be positive");
  const std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  seq_ = 0;
  boundary_ = 0;
  emitted_ = 0;
  progress_seen_ = false;
  zero_progress_ = 0;
  tracker_.reset(global_counters());
  prev_faults_ = fault::global().total_injected();
  // Anything to do? A stream, watchdog rules, a stall detector, or an
  // armed flight recorder (which needs the per-interval drain/poll even
  // with no stream).
  const bool active = !config.out_path.empty() || !config.rules.empty() ||
                      config.stall_intervals > 0 || flight().armed();
  if (!active) return;
  if (!config.out_path.empty()) {
    out_.open(config.out_path, std::ios::trunc);
    if (!out_) {
      TAHOE_WARN("cannot open telemetry output file '" << config.out_path
                                                       << "'");
    } else {
      out_open_ = true;
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
  if (config_.wall_clock) {
    stop_ = false;
    thread_ = std::thread([this] { wall_loop(); });
  }
}

void TelemetrySampler::shutdown() {
  stop_thread();
  const std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  if (out_open_) {
    out_.flush();
    out_.close();
    out_open_ = false;
  }
}

void TelemetrySampler::stop_thread() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
  }
}

void TelemetrySampler::advance_virtual(double now) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (config_.wall_clock) return;
  const double interval = config_.interval_seconds;
  // Bounded catch-up: a pathological (tiny-interval, huge-jump) config
  // must not wedge the run emitting lines. Skipped intervals are empty by
  // construction — nothing changed between them — so the fast-forward is
  // still deterministic.
  constexpr std::uint64_t kMaxPerCall = 1u << 20;
  std::uint64_t calls = 0;
  while (now >= static_cast<double>(boundary_ + 1) * interval) {
    if (++calls > kMaxPerCall) {
      TAHOE_WARN("telemetry catch-up clamped after " << kMaxPerCall
                                                     << " intervals");
      boundary_ = static_cast<std::uint64_t>(now / interval);
      break;
    }
    ++boundary_;
    emit_interval(static_cast<double>(boundary_) * interval, interval);
  }
}

void TelemetrySampler::begin_run(const std::string& label) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string line = serialize_phase(seq_, label);
  if (out_open_) out_ << line << '\n';
  flight().record_line(line);
  // The run-relative clock restarts; the sequence number keeps counting.
  boundary_ = 0;
  progress_seen_ = false;
  zero_progress_ = 0;
}

std::uint64_t TelemetrySampler::intervals_emitted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

void TelemetrySampler::emit_interval(double t, double dt) {
  sync_dropped_events_counter();
  const IntervalSample sample = tracker_.advance(global_counters(), t, dt);
  const std::uint64_t seq = seq_++;
  const auto write_line = [this](const std::string& line) {
    if (out_open_) out_ << line << '\n';
    flight().record_line(line);
  };
  write_line(serialize_interval(seq, sample));
  const bool flight_armed = flight().armed();
  if (flight_armed) flight().record_events(global().drain());

  // Declarative watchdog rules.
  bool breached = false;
  for (const SloRule& rule : config_.rules) {
    double observed = 0.0;
    if (!slo_observed(rule, sample, &observed)) continue;
    if (rule.holds(observed)) continue;
    write_line(serialize_breach(seq, t, rule, observed));
    global_counters().get("slo.breaches").increment();
    breached = true;
  }

  // No-progress stall detector: arms after the first interval that showed
  // progress, fires after K consecutive zero-progress intervals, then
  // re-arms only once progress resumes (one breach per stall episode).
  if (config_.stall_intervals > 0) {
    std::uint64_t progress = 0;
    for (const auto& [name, delta] : sample.counter_deltas) {
      if (name == "sim.tasks_executed" || name == "executor.tasks") {
        progress += delta;
      }
    }
    if (progress > 0) {
      progress_seen_ = true;
      zero_progress_ = 0;
    } else if (progress_seen_ &&
               ++zero_progress_ >= config_.stall_intervals) {
      write_line(serialize_stall(seq, t, zero_progress_));
      global_counters().get("slo.breaches").increment();
      progress_seen_ = false;
      zero_progress_ = 0;
      if (flight_armed) flight().dump("stall", t);
    }
  }
  if (breached && flight_armed) flight().dump("slo-breach", t);

  // Injected-fault trigger: poll the injector's cumulative count so the
  // fault layer needs no coupling to the recorder.
  const std::uint64_t faults = fault::global().total_injected();
  if (faults != prev_faults_) {
    if (flight_armed) flight().dump("fault", t);
    prev_faults_ = faults;
  }
  ++emitted_;
}

void TelemetrySampler::wall_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(config_.interval_seconds));
  auto next = std::chrono::steady_clock::now() + interval;
  while (!stop_) {
    if (cv_.wait_until(lock, next, [this] { return stop_; })) break;
    next += interval;
    ++boundary_;
    emit_interval(static_cast<double>(boundary_) * config_.interval_seconds,
                  config_.interval_seconds);
  }
}

TelemetrySampler& telemetry() {
  static TelemetrySampler sampler;
  return sampler;
}

void register_telemetry_flags(Flags& flags) {
  flags.define_string("telemetry-out", "",
                      "stream interval telemetry (counter deltas/rates, "
                      "gauge levels, histogram digests) as JSONL here");
  flags.define_double("telemetry-interval", 0.1,
                      "telemetry sampling cadence in seconds");
  flags.define_string("telemetry-clock", "virtual",
                      "telemetry clock: virtual (simulated paths, "
                      "deterministic) or wall (background thread)");
  flags.define_string("slo-rules", "",
                      "comma-separated SLO watchdog rules, e.g. "
                      "hist:serve.prod.request_ns.p99<250ms");
  flags.define_int("slo-stall-intervals", 0,
                   "breach after this many consecutive zero-progress "
                   "telemetry intervals (0 = off)");
  flags.define_string("flight-out", "",
                      "dump the flight-recorder rings (last trace events + "
                      "telemetry intervals) here on fault, SLO breach or "
                      "fatal signal");
  flags.define_int("flight-events", 2048,
                   "flight recorder: trace events kept");
  flags.define_int("flight-intervals", 64,
                   "flight recorder: telemetry lines kept");
}

TelemetryConfig telemetry_config_from_flags(const Flags& flags) {
  TelemetryConfig config;
  config.out_path = flags.get_string("telemetry-out");
  config.interval_seconds = flags.get_double("telemetry-interval");
  const std::string clock = flags.get_string("telemetry-clock");
  TAHOE_REQUIRE(clock == "virtual" || clock == "wall",
                "--telemetry-clock must be 'virtual' or 'wall'");
  config.wall_clock = clock == "wall";
  config.rules = parse_slo_rules(flags.get_string("slo-rules"));
  config.stall_intervals =
      static_cast<int>(flags.get_int("slo-stall-intervals"));
  return config;
}

void configure_telemetry_from_flags(const Flags& flags,
                                    bool retain_trace_events) {
  // Flight first: the sampler's activation check consults armed().
  const std::string flight_out = flags.get_string("flight-out");
  if (!flight_out.empty()) {
    FlightRecorder::Config fc;
    fc.out_path = flight_out;
    fc.max_events =
        static_cast<std::size_t>(flags.get_int("flight-events"));
    fc.max_intervals =
        static_cast<std::size_t>(flags.get_int("flight-intervals"));
    fc.retain_events = retain_trace_events;
    flight().configure(fc);
  } else {
    flight().disarm();
  }
  const TelemetryConfig config = telemetry_config_from_flags(flags);
  telemetry().configure(config);
  if (telemetry().enabled() && !config.out_path.empty()) {
    // Interval histogram digests (per-tenant p50/p99) need the recording
    // sites on, same as the other artifact outputs.
    set_histograms_enabled(true);
  }
  if (telemetry().enabled()) {
    static bool exit_hooked = false;
    if (!exit_hooked) {
      exit_hooked = true;
      std::atexit([] { telemetry().shutdown(); });
    }
  }
}

void sync_dropped_events_counter() {
  const std::uint64_t dropped = global().dropped();
  if (dropped == 0) return;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    TAHOE_WARN("tracer dropped "
               << dropped
               << " event(s) on full rings; raise the ring capacity or "
                  "sample/drain more often");
  }
  // The total is monotonic, so set() keeps the counter semantics.
  global_counters().get("trace.dropped_events").set(dropped);
}

}  // namespace tahoe::trace
