// Post-run trace analysis: the library behind the tahoe_inspect CLI.
//
// Consumes the Chrome trace JSON written by chrome_export (plus,
// optionally, the run report and --explain-out documents) and derives the
// quantities the paper's evaluation cares about: the phase-structured
// critical path, how much data movement was hidden behind computation,
// per-worker utilization, and the placement rationale of the final plan.
//
// Everything here is computed from the serialized artifacts only — no
// access to live runtime state — so analyses are reproducible from the
// files alone and the outputs of two same-seed simulated runs are
// byte-identical (wall-clock-measured fields are deliberately never
// echoed).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "trace/json.hpp"

namespace tahoe::trace {

/// Busy time of one worker lane (a track that executed task spans).
struct WorkerUtilization {
  std::uint64_t track = 0;
  std::string name;               ///< track label ("worker 3")
  std::uint64_t tasks = 0;        ///< task spans on this lane
  double busy_seconds = 0.0;      ///< sum of task span durations
  double utilization = 0.0;       ///< busy / trace makespan
};

/// One row of the placement-rationale table (from the explain document's
/// final plan record).
struct RationaleRow {
  std::string object;
  std::uint64_t chunk = 0;
  std::string pass;  ///< "local" / "global" / "pinned"
  std::uint64_t group = 0;
  /// Destination tier of the candidate. Schema-v3 explain documents carry
  /// it explicitly; v2 (two-tier) documents imply tier 0 (DRAM fills).
  std::uint64_t tier = 0;
  std::string sensitivity;
  double benefit = 0.0;
  double cost = 0.0;
  double extra_cost = 0.0;
  double value = 0.0;
  std::uint64_t bytes = 0;
  bool accepted = false;
  std::string reason;
};

/// Per-tenant serving digest echoed from a schema-v4 report's "tenants"
/// section (multi-tenant serving runs; empty otherwise). Latencies are in
/// nanoseconds, as recorded.
struct TenantAnalysisRow {
  std::string name;
  double priority = 0.0;
  std::uint64_t quota_bytes = 0;
  std::uint64_t fast_bytes = 0;   ///< resident on the fastest tier
  std::uint64_t total_bytes = 0;  ///< total provisioned footprint
  std::uint64_t requests = 0;
  std::uint64_t dropped = 0;
  std::uint64_t latency_p50_ns = 0;
  std::uint64_t latency_p99_ns = 0;
  std::uint64_t queue_p50_ns = 0;
  std::uint64_t queue_p99_ns = 0;
  std::uint64_t service_p50_ns = 0;
  std::uint64_t service_p99_ns = 0;
};

struct Analysis {
  // Trace metadata.
  std::uint64_t schema_version = 0;
  std::uint64_t dropped_events = 0;

  // Timeline extent (seconds; virtual or wall, whatever the trace used).
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  double makespan_seconds = 0.0;

  /// Phase-structured critical path: per group span, the longest task it
  /// contains (groups are serialized by the phase protocol, so their maxima
  /// add), plus the exposed migration stalls between them.
  double critical_path_seconds = 0.0;
  double critical_path_fraction = 0.0;  ///< / makespan (0 when empty)

  // Data-movement accounting from migrate / migration-stall spans.
  double copy_busy_seconds = 0.0;
  double stall_seconds = 0.0;
  /// (copy_busy - stall) / copy_busy: 1.0 = fully hidden, 0.0 = fully
  /// exposed; 1.0 when nothing moved.
  double overlap_efficiency = 1.0;
  std::uint64_t migrations = 0;
  std::uint64_t bytes_moved = 0;

  std::uint64_t group_spans = 0;
  std::uint64_t task_spans = 0;
  std::vector<WorkerUtilization> workers;

  // From the report document (when provided).
  bool has_report = false;
  /// RunReport schema: 2 = two-tier (dram/nvm fields), 3 = N-tier
  /// (tiers list, per-tier attribution, migration flows). Both parse.
  std::uint64_t report_schema_version = 0;
  std::string workload;
  std::string policy;
  std::string strategy;
  double report_overlap_fraction = 0.0;
  /// Tier names from a v3 document ("tiers"); empty for v2.
  std::vector<std::string> tier_names;
  /// Per-tenant serving rows from a v4 document ("tenants"); empty for
  /// v2/v3 reports and non-serving runs.
  std::vector<TenantAnalysisRow> tenant_rows;

  // From the explain document's last plan (when provided).
  bool has_explain = false;
  double local_gain = 0.0;
  double global_gain = 0.0;
  double predicted_gain = 0.0;
  std::vector<RationaleRow> rationale;
  /// Planned occupancy per destination tier: bytes of distinct accepted
  /// (object, chunk) units of the winning pass, indexed by TierId.
  std::vector<std::uint64_t> planned_tier_bytes;
};

/// Analyze a parsed Chrome trace document; `report` / `explain` are
/// optional (null = the corresponding sections stay empty).
Analysis analyze(const JsonValue& trace_doc, const JsonValue* report,
                 const JsonValue* explain);

/// Deterministic single-line JSON rendering of the analysis (followed by a
/// newline).
void write_analysis_json(std::ostream& os, const Analysis& a);

/// Human-readable rendering: a summary block plus the per-worker and
/// placement-rationale tables.
void write_analysis_tables(std::ostream& os, const Analysis& a);

// ---- telemetry timeline (tahoe_inspect --timeline) ---------------------

/// One telemetry interval, reduced to the headline rates.
struct TimelineInterval {
  std::uint64_t seq = 0;
  double t = 0.0;
  double dt = 0.0;
  std::uint64_t tasks_delta = 0;   ///< sim.tasks_executed + executor.tasks
  double tasks_rate = 0.0;         ///< tasks_delta / dt
  std::uint64_t bytes_delta = 0;   ///< sum of migrate.bytes.* deltas
  double bytes_rate = 0.0;
  std::uint64_t breaches = 0;      ///< breach lines at this seq
};

/// A {"type":"phase"} marker (run boundary).
struct TimelinePhase {
  std::uint64_t seq = 0;
  std::string label;
};

/// A {"type":"breach"} line (SLO violation or stall).
struct TimelineBreach {
  std::uint64_t seq = 0;
  double t = 0.0;
  std::string kind;   ///< "slo" or "stall"
  std::string rule;   ///< original rule text ("" for stalls)
  double observed = 0.0;
  double limit = 0.0;
  std::uint64_t intervals = 0;  ///< stall length (stall breaches only)
};

struct Timeline {
  std::vector<TimelineInterval> rows;
  std::vector<TimelinePhase> phases;
  std::vector<TimelineBreach> breaches;
  double duration_seconds = 0.0;   ///< last interval's t
  std::uint64_t total_tasks = 0;
  std::uint64_t total_bytes = 0;
};

/// Parse a telemetry JSONL stream (the --telemetry-out file) into a
/// Timeline. Unknown line types are skipped; malformed JSON throws
/// std::runtime_error (with the offending line number).
Timeline analyze_timeline(const std::string& jsonl_text);

/// Deterministic single-line JSON rendering of the timeline.
void write_timeline_json(std::ostream& os, const Timeline& tl);

/// Human-readable rendering: interval rate rows with phase boundaries and
/// breach markers inline.
void write_timeline_table(std::ostream& os, const Timeline& tl);

// ---- segment stats (tahoe_inspect --segment-stats) ---------------------

/// Metadata footprint of one arena's range list inside the registry
/// segment (from the hms.segment.arena.<name>.* gauges).
struct SegmentArenaRow {
  std::string name;
  std::uint64_t meta_bytes = 0;   ///< RangeNode bytes in the segment
  std::uint64_t free_ranges = 0;  ///< free ranges on the arena's list

  bool operator==(const SegmentArenaRow&) const = default;
};

/// Storage-layer digest of the hms::Segment hosting the object registry,
/// reconstructed from a report document's hms.segment.* counters/gauges.
struct SegmentStats {
  bool present = false;  ///< any hms.segment.* metric appeared in the report
  // Monotonic counters (segment-allocator call totals).
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  // Gauges (levels at report time).
  std::uint64_t slots_live = 0;       ///< live object slots
  std::uint64_t slot_capacity = 0;    ///< slot-table size
  std::uint64_t bytes_used = 0;       ///< bump high-water inside the segment
  std::uint64_t bytes_capacity = 0;   ///< mapped segment size
  std::uint64_t freelist_blocks = 0;  ///< recycled blocks awaiting reuse
  std::uint64_t freelist_bytes = 0;
  std::vector<SegmentArenaRow> arenas;  ///< name order (map-sorted)

  /// Fraction of the mapped segment consumed by metadata (0 when the
  /// capacity gauge is absent).
  double occupancy() const noexcept {
    return bytes_capacity > 0
               ? static_cast<double>(bytes_used) /
                     static_cast<double>(bytes_capacity)
               : 0.0;
  }
};

/// Extract the segment digest from a parsed report document ("counters" /
/// "gauges" sections). Reports predating the segment layer simply yield
/// present == false.
SegmentStats analyze_segment_stats(const JsonValue& report);

/// Deterministic single-line JSON rendering of the segment stats.
void write_segment_stats_json(std::ostream& os, const SegmentStats& s);

/// Human-readable rendering: a summary block plus the per-arena table.
void write_segment_stats_table(std::ostream& os, const SegmentStats& s);

}  // namespace tahoe::trace
