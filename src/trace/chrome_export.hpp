// Chrome trace_event JSON exporter.
//
// Converts drained TraceEvents into the Trace Event Format understood by
// chrome://tracing and Perfetto: one "process" per run, one named thread
// (track) per worker plus the migration/planner/runtime tracks, "X"
// complete events for spans, "i" instants and "C" counters. Timestamps are
// converted from seconds (wall or virtual — the format does not care) to
// the microseconds the format requires.
#pragma once

#include <ostream>
#include <string>

#include "trace/trace.hpp"

namespace tahoe::trace {

/// Serialize `events` (with the given track labels) as a complete Chrome
/// trace JSON document. Besides "traceEvents" the document carries a
/// top-level "tahoe" object ({"schema_version", "dropped_events"}) so
/// post-run analysis can account for ring-buffer overflow drops; viewers
/// ignore unknown top-level keys.
void write_chrome_trace(
    std::ostream& os, const std::vector<TraceEvent>& events,
    const std::vector<std::pair<TrackId, std::string>>& track_names,
    std::uint64_t dropped_events = 0);

/// Drain `tracer` and write its trace to `path`. Returns false (after
/// logging a warning) when the file cannot be opened. Unnamed tracks get a
/// generated "track <id>" label.
bool export_chrome_trace(Tracer& tracer, const std::string& path);

/// Same, but prepends `retained` — events the telemetry sampler already
/// drained into the flight recorder's ring (FlightRecorder::take_retained)
/// — so a run with both --trace-out and an armed flight recorder still
/// exports its full timeline. The exporter sorts by timestamp, so the
/// stitched stream reads identically to a single drain.
bool export_chrome_trace(Tracer& tracer, const std::string& path,
                         const std::vector<TraceEvent>& retained);

}  // namespace tahoe::trace
