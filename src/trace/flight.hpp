// Flight recorder: a bounded "what just happened" capture for faults.
//
// Heavy tracing is too expensive to leave on in a long-running serving
// node, but when a fault fires or an SLO is breached the operator wants
// the recent history, not just the breach line. The FlightRecorder keeps
// two bounded rings — the last K trace events and the last M serialized
// telemetry lines (intervals, phase markers, breach events) — and dumps
// both as one JSON document to a configured path when the telemetry
// sampler observes an injected fault or an SLO breach, or (best-effort)
// when a fatal signal arrives. Steady-state cost is the ring append; the
// dump path is cold.
//
// The recorder is fed by the TelemetrySampler (telemetry.hpp): each
// sampling interval drains the global tracer into the event ring. Because
// Tracer::drain() is destructive, a run that also wants a full
// --trace-out timeline would lose every drained event to the ring; the
// `retain_events` mode keeps a full copy of everything drained, and the
// chrome exporter's retained-events overload stitches the two back
// together at exit (chrome_export.hpp).
//
// Process-global, like the tracer / counter registry / fault injector:
// the dump triggers live in layers (sampler, signal handler) that cannot
// thread a handle through every caller.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace tahoe::trace {

class FlightRecorder {
 public:
  struct Config {
    std::string out_path;            ///< dump destination ("" = disarmed)
    std::size_t max_events = 2048;   ///< trace-event ring capacity (K)
    std::size_t max_intervals = 64;  ///< telemetry-line ring capacity (M)
    /// Keep a full copy of every drained trace event so an at-exit
    /// chrome export still sees the whole timeline (set when --trace-out
    /// is also active).
    bool retain_events = false;
  };

  /// Arm (or re-arm) the recorder: clears both rings, resets the dump
  /// count, installs the fatal-signal hook on first arming. An empty
  /// out_path disarms.
  void configure(const Config& config);
  void disarm();
  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Append drained trace events to the bounded ring (oldest evicted).
  void record_events(const std::vector<TraceEvent>& events);

  /// Append one serialized telemetry JSONL line (interval / phase /
  /// breach) to the bounded line ring.
  void record_line(const std::string& line);

  /// Write the flight document ({"schema":"tahoe_flight_v1", reason,
  /// trigger time, both rings}) to the configured path, overwriting any
  /// previous dump — last trigger wins. Returns false (after a warning)
  /// when disarmed or the file cannot be written. Bumps "flight.dumps"
  /// in the global counter registry.
  bool dump(const std::string& reason, double t);

  /// Move the retained full-fidelity event copy out (empties it). Used by
  /// the chrome exporter at exit; empty unless retain_events was set.
  std::vector<TraceEvent> take_retained();

  std::uint64_t dumps() const;

  /// Test hooks: current ring occupancy.
  std::size_t event_count() const;
  std::size_t line_count() const;

 private:
  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  Config config_;
  std::deque<TraceEvent> events_;
  std::deque<std::string> lines_;
  std::vector<TraceEvent> retained_;
  std::uint64_t dumps_ = 0;
};

/// Process-wide flight recorder fed by the telemetry sampler.
FlightRecorder& flight();

}  // namespace tahoe::trace
