// Live telemetry: interval time-series over the counter registry, plus a
// declarative SLO watchdog.
//
// Post-mortem observability (one registry snapshot folded into the
// RunReport at exit) says nothing about *when* a run went sideways. The
// TelemetrySampler closes that gap: at a configurable cadence it snapshots
// the global CounterRegistry and streams one JSONL line per interval to
// --telemetry-out, carrying interval *deltas* — counter deltas and rates,
// gauge levels, histogram bucket-delta digests — never cumulative totals.
// Deltas are what make the stream byte-reproducible: the process-global
// registry accumulates across runs, but the difference between two
// consecutive snapshots of a seeded simulated run is deterministic, so two
// --deterministic invocations write byte-identical telemetry.
//
// Two clock modes, mirroring the tracer's two time bases:
//  * Virtual (default): the simulated paths (SimExecutor, serve driver)
//    drive the sampler explicitly via advance_virtual(now) at group
//    boundaries; every cadence boundary crossed since the last call emits
//    one interval. Fully deterministic.
//  * Wall: a background thread ticks at the cadence (real-executor runs,
//    where there is no virtual clock to ride).
//
// The SLO watchdog evaluates declarative rules against each interval
// sample. Rule grammar (comma-separated in --slo-rules):
//
//   kind:metric[.stat] op value[unit]
//
//   kind   counter | gauge | hist
//   stat   counters: rate (default, delta/dt) or delta
//          gauges:   level (default)
//          hists:    p50 | p90 | p99 | mean | count | max of the
//                    *interval delta* snapshot
//   op     < | <= | > | >=      (the condition that must HOLD)
//   unit   ns | us | ms | s     (scales the value to ns, for hist stats)
//
//   e.g.  hist:serve.prod.request_ns.p99 < 250ms
//         gauge:migrate.queue_depth < 8
//         counter:sim.tasks_executed.rate > 1000
//
// A violated rule emits a {"type":"breach"} line, bumps "slo.breaches",
// and (when the flight recorder is armed) triggers a dump. A separate
// no-progress stall detector fires when the progress counters
// (sim.tasks_executed + executor.tasks) show zero delta for K consecutive
// intervals after progress was first observed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/counters.hpp"
#include "trace/histogram.hpp"

namespace tahoe {
class Flags;
}

namespace tahoe::trace {

/// One parsed watchdog rule; see the header comment for the grammar.
struct SloRule {
  enum class Kind { Counter, Gauge, Hist };
  enum class Op { Lt, Le, Gt, Ge };

  std::string text;    ///< original spec, echoed in breach lines
  Kind kind = Kind::Counter;
  std::string metric;  ///< registry name
  std::string stat;    ///< "rate"/"delta"/"level"/"p50"/"p90"/"p99"/...
  Op op = Op::Lt;
  double limit = 0.0;  ///< ns for hist stats when a unit suffix was given

  /// True when `observed` satisfies the rule (no breach).
  bool holds(double observed) const noexcept;
};

/// Parse one rule. Throws ContractError on malformed specs.
SloRule parse_slo_rule(const std::string& spec);

/// Parse a comma-separated rule list ("" -> empty).
std::vector<SloRule> parse_slo_rules(const std::string& csv);

/// One sampling interval's worth of registry change.
struct IntervalSample {
  double t = 0.0;   ///< end-of-interval time, run-relative seconds
  double dt = 0.0;  ///< interval length
  /// Counter deltas since the previous sample (only nonzero ones).
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  /// Gauge levels at the sample point (all gauges; levels, not deltas).
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  /// Histogram bucket-wise deltas since the previous sample (only those
  /// with a nonzero interval count).
  std::vector<std::pair<std::string, HistogramSnapshot>> hist_deltas;
};

/// Observed value of `rule` over `sample`. Counters absent from the sample
/// evaluate with a zero delta (so throughput-floor rules catch quiet
/// intervals); gauges and histograms absent from the sample return false
/// and are not evaluated (no level registered / no recordings this
/// interval).
bool slo_observed(const SloRule& rule, const IntervalSample& sample,
                  double* observed);

/// Computes registry deltas between consecutive snapshots. A counter first
/// seen mid-run contributes its full value; a counter that shrank (registry
/// reset between runs) restarts — its delta is the new value, never an
/// underflow. Gauges pass through as levels, so a decreasing gauge is just
/// a lower level. Histogram deltas subtract bucket-wise (clamped at zero);
/// the delta's max is the cumulative max — an upper bound for the
/// interval, which keeps percentile clamping safe.
class DeltaTracker {
 public:
  /// Seed the previous snapshot from the registry's current state, so the
  /// first interval reports only what happened after arming.
  void reset(const CounterRegistry& registry);

  /// Snapshot the registry and return the change since the last call.
  IntervalSample advance(const CounterRegistry& registry, double t, double dt);

 private:
  std::map<std::string, std::uint64_t> prev_counters_;
  std::map<std::string, HistogramSnapshot> prev_hists_;
};

struct TelemetryConfig {
  std::string out_path;           ///< JSONL stream ("" = no stream)
  double interval_seconds = 0.1;  ///< sampling cadence
  bool wall_clock = false;        ///< false = virtual (driven externally)
  std::vector<SloRule> rules;
  /// Stall detector: breach after this many consecutive zero-progress
  /// intervals (0 disables).
  int stall_intervals = 0;
};

class TelemetrySampler {
 public:
  /// Arm with `config`: resets the interval sequence, seeds the delta
  /// tracker from the registry's current state, (re)opens the output
  /// stream, and starts the background thread in wall-clock mode. A
  /// config with no output, no rules, no stall detector and a disarmed
  /// flight recorder disables the sampler.
  void configure(const TelemetryConfig& config);

  /// Stop the wall-clock thread (if any), flush and close the stream,
  /// disable. Safe to call repeatedly; configure() re-arms.
  void shutdown();

  /// One relaxed load — the gate the virtual-clock drivers check before
  /// calling advance_virtual.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Virtual-clock driver: `now` is absolute virtual seconds within the
  /// current run (monotonic per run; begin_run resets the epoch). Emits
  /// one interval per cadence boundary crossed since the last call.
  void advance_virtual(double now);

  /// Mark a run/phase boundary: emits a {"type":"phase"} line and restarts
  /// the run-relative clock at zero (the interval sequence number keeps
  /// counting across phases).
  void begin_run(const std::string& label);

  /// Intervals emitted since configure() (test hook).
  std::uint64_t intervals_emitted() const;

 private:
  void emit_interval(double t, double dt);  // mutex_ held
  void wall_loop();
  void stop_thread();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  TelemetryConfig config_;
  std::ofstream out_;
  bool out_open_ = false;
  DeltaTracker tracker_;
  std::uint64_t seq_ = 0;
  std::uint64_t boundary_ = 0;  ///< intervals emitted in the current run
  std::uint64_t emitted_ = 0;
  std::uint64_t prev_faults_ = 0;
  bool progress_seen_ = false;
  int zero_progress_ = 0;

  std::thread thread_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide sampler, like global() / global_counters().
TelemetrySampler& telemetry();

/// Register the --telemetry-* / --slo-* / --flight-* flag set on a
/// binary's Flags instance (the fault::register_flags pattern).
void register_telemetry_flags(Flags& flags);

/// Build a TelemetryConfig from the parsed flags (rules are parsed here;
/// malformed rules throw ContractError).
TelemetryConfig telemetry_config_from_flags(const Flags& flags);

/// Configure (or disable) the global sampler and flight recorder from the
/// parsed flags. `retain_trace_events` keeps a full copy of every trace
/// event the sampler drains into the flight ring, so an at-exit chrome
/// export still sees the whole timeline — pass true when --trace-out is
/// also active. Installs a process-exit hook that flushes the stream.
void configure_telemetry_from_flags(const Flags& flags,
                                    bool retain_trace_events = false);

/// Satellite of the tracer: publish Tracer::dropped() into the registry as
/// the "trace.dropped_events" counter (registered only once drops exist,
/// so clean runs' reports are unchanged) and warn once when events were
/// lost to full rings. Called by the report writers and the sampler.
void sync_dropped_events_counter();

}  // namespace tahoe::trace
