#include "core/profiles.hpp"

#include "common/assert.hpp"

namespace tahoe::core {

double PhaseProfiles::group_duration(task::GroupId g) const {
  TAHOE_REQUIRE(g < groups.size(), "group out of range");
  if (iterations_profiled == 0) return 0.0;
  return groups[g].duration_seconds /
         static_cast<double>(iterations_profiled);
}

void Profiler::observe(const task::TaskGraph& graph,
                       const task::SimReport& report) {
  if (profiles_.groups.size() < graph.num_groups()) {
    profiles_.groups.resize(graph.num_groups());
  }
  TAHOE_REQUIRE(report.task_seconds.size() == graph.num_tasks(),
                "report does not match graph");

  for (task::GroupId g = 0; g < graph.num_groups(); ++g) {
    profiles_.groups[g].duration_seconds += report.group_seconds[g];
  }

  for (const task::Task& t : graph.tasks()) {
    const double duration = report.task_seconds[t.id];
    for (const task::DataAccess& a : t.accesses) {
      const memsim::SampledCounts s = sampler_.sample(a.traffic, duration);
      samples_taken_ += s.accesses();
      const std::size_t chunk = (a.chunk == task::kAllChunks) ? 0 : a.chunk;
      memsim::SampledCounts& acc =
          profiles_.groups[t.group].units[UnitKey{a.object, chunk}];
      acc.loads += s.loads;
      acc.stores += s.stores;
      acc.samples_with_access += s.samples_with_access;
      acc.total_samples += s.total_samples;
    }
  }
  ++profiles_.iterations_profiled;
}

}  // namespace tahoe::core
