#include "core/runtime.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "core/adaptivity.hpp"
#include "core/initial_placement.hpp"
#include "core/profiles.hpp"
#include "hms/migration.hpp"
#include "task/executor.hpp"
#include "task/sim_executor.hpp"
#include "trace/counters.hpp"
#include "trace/trace.hpp"

namespace tahoe::core {

namespace {

/// Register the standard track labels on the global tracer (no-op when
/// tracing is off). Shared by the simulated and real execution paths.
void name_standard_tracks(std::uint32_t workers) {
  trace::Tracer& tracer = trace::global();
  if (!tracer.enabled()) return;
  for (std::uint32_t w = 0; w < workers; ++w) {
    tracer.set_track_name(w, "worker " + std::to_string(w));
  }
  tracer.set_track_name(trace::kMigrationTrack, "migration engine");
  tracer.set_track_name(trace::kPlannerTrack, "planner");
  tracer.set_track_name(trace::kRuntimeTrack, "runtime phases");
}

}  // namespace

std::vector<ObjectInfo> collect_objects(const hms::ObjectRegistry& registry) {
  std::vector<ObjectInfo> out;
  for (const hms::ObjectId id : registry.live_objects()) {
    const hms::DataObject& obj = registry.get(id);
    ObjectInfo info;
    info.id = id;
    info.name = obj.name;
    info.static_ref_estimate = obj.static_ref_estimate;
    info.chunk_bytes.reserve(obj.chunks.size());
    for (const hms::Chunk& c : obj.chunks) info.chunk_bytes.push_back(c.bytes);
    out.push_back(std::move(info));
  }
  return out;
}

Runtime::Runtime(RuntimeConfig config) : config_(std::move(config)) {
  TAHOE_REQUIRE(config_.profile_iterations >= 1,
                "need at least one profiling iteration");
  TAHOE_REQUIRE(config_.machine.devices.size() >= 2,
                "machine must have DRAM and NVM tiers");
}

Runtime::AppState Runtime::prepare(Application& app, bool huge_tiers) {
  const memsim::Machine& m = config_.machine;
  std::vector<std::uint64_t> caps;
  caps.reserve(m.devices.size());
  for (const memsim::DeviceModel& d : m.devices) caps.push_back(d.capacity);
  if (huge_tiers) {
    // Static baselines: the pinned tier must hold the full footprint.
    const std::uint64_t big =
        *std::max_element(caps.begin(), caps.end());
    for (std::uint64_t& c : caps) c = big;
  }

  AppState state;
  state.registry = std::make_unique<hms::ObjectRegistry>(caps, config_.backing);
  hms::ChunkingPolicy chunking;
  chunking.dram_capacity = config_.chunking ? m.dram().capacity : 0;
  app.setup(*state.registry, chunking);
  TAHOE_REQUIRE(state.registry->num_objects() > 0,
                "application allocated no data objects");
  state.objects = collect_objects(*state.registry);
  for (const ObjectInfo& o : state.objects) {
    for (std::size_t c = 0; c < o.chunk_bytes.size(); ++c) {
      state.placement.set(o.id, c, memsim::kNvm);
    }
  }
  return state;
}

RunReport Runtime::run(Application& app, Policy& policy) {
  const memsim::Machine& machine = config_.machine;
  AppState state = prepare(app, /*huge_tiers=*/false);

  RunReport report;
  report.workload = app.name();
  report.policy = policy.name();

  // Initial placement: free at allocation time.
  if (config_.initial_placement) {
    for (const UnitKey& u :
         choose_initial_dram(state.objects, machine.dram().capacity)) {
      state.placement.set(u.object, u.chunk, memsim::kDram);
    }
  }

  Profiler profiler(memsim::Sampler(machine.sample_interval, machine.cpu_hz,
                                    machine.seed));
  AdaptiveMonitor monitor(config_.adapt_threshold);
  std::vector<task::ScheduledCopy> schedule;
  std::string strategy;
  std::size_t profiling_left =
      policy.needs_profiling() ? config_.profile_iterations : 0;
  bool decided = false;
  std::size_t enforced_since_decision = 0;

  task::SimExecutor executor;
  task::SimExecutor::Options opts;
  opts.unit_size = [&state](hms::ObjectId id, std::size_t chunk) {
    return state.registry->get(id).chunks.at(chunk).bytes;
  };

  // Tracing: the simulated timeline is laid out on one virtual clock that
  // accumulates iteration makespans, so a full run reads left-to-right in
  // chrome://tracing. All instrumentation vanishes when tracing is off.
  trace::Tracer& tracer = trace::global();
  const bool traced = tracer.enabled();
  double vclock = 0.0;
  if (traced) {
    name_standard_tracks(opts.workers != 0 ? opts.workers : machine.workers);
    opts.tracer = &tracer;
  }

  // Offline policies (no profiling) decide immediately on iteration 0's
  // graph; handled inside the loop below.
  const std::size_t iterations = app.iterations();
  TAHOE_REQUIRE(iterations >= 1, "application declares no iterations");

  for (std::size_t iter = 0; iter < iterations; ++iter) {
    task::GraphBuilder builder;
    app.build_iteration(builder, iter);
    const task::TaskGraph graph = builder.build();

    if (!decided && profiling_left == 0) {
      // Offline policy: decide on the first iteration's graph.
      PlanInputs inputs;
      inputs.graph = &graph;
      inputs.machine = &machine;
      inputs.profiles = nullptr;
      inputs.objects = state.objects;
      inputs.current = state.placement;
      PlanDecision decision = policy.decide(inputs);
      schedule = std::move(decision.schedule);
      strategy = decision.strategy;
      report.decision_seconds += decision.decision_seconds;
      report.overhead_seconds += decision.decision_seconds;
      decided = true;
      enforced_since_decision = 0;
      if (traced) {
        const std::string label = "decide " + strategy;
        tracer.instant(trace::kPlannerTrack, label.c_str(), vclock, "copies",
                       schedule.size(), "cost_us",
                       static_cast<std::uint64_t>(decision.decision_seconds *
                                                  1e6));
      }
    }

    const std::uint64_t samples_before = profiler.samples_taken();
    opts.trace_time_offset = vclock;
    const task::SimReport sim =
        executor.run(graph, machine, state.placement, schedule, opts);
    report.iteration_seconds.push_back(sim.makespan);
    report.compute_seconds += sim.makespan;
    report.bytes_moved += sim.bytes_copied;
    // Count only copies that moved data (no-op copies are free).
    report.migrations += sim.copies_done;
    report.copy_busy_seconds += sim.copy_busy_seconds;
    report.stall_seconds += sim.stall_seconds;
    report.overhead_seconds +=
        static_cast<double>(graph.num_groups()) * config_.sync_cost_seconds;

    if (profiling_left > 0) {
      profiler.observe(graph, sim);
      report.overhead_seconds +=
          static_cast<double>(profiler.samples_taken() - samples_before) *
          config_.sample_cost_seconds;
      if (traced) {
        tracer.complete(trace::kPlannerTrack, "profile", vclock, sim.makespan,
                        "iteration", iter, "samples",
                        profiler.samples_taken() - samples_before);
      }
      --profiling_left;
      if (profiling_left == 0) {
        PlanInputs inputs;
        inputs.graph = &graph;
        inputs.machine = &machine;
        inputs.profiles = &profiler.profiles();
        inputs.objects = state.objects;
        inputs.current = state.placement;
        PlanDecision decision = policy.decide(inputs);
        schedule = std::move(decision.schedule);
        strategy = decision.strategy;
        report.decision_seconds += decision.decision_seconds;
        report.overhead_seconds += decision.decision_seconds;
        decided = true;
        enforced_since_decision = 0;
        if (traced) {
          const std::string label = "decide " + strategy;
          tracer.instant(trace::kPlannerTrack, label.c_str(),
                         vclock + sim.makespan, "copies", schedule.size(),
                         "cost_us",
                         static_cast<std::uint64_t>(
                             decision.decision_seconds * 1e6));
        }
        TAHOE_DEBUG("decision for " << app.name() << ": " << strategy
                                    << ", " << schedule.size() << " copies");
      }
    } else if (decided) {
      ++enforced_since_decision;
      if (config_.adaptive && policy.needs_profiling()) {
        if (enforced_since_decision == 2) {
          // The first enforced iteration pays one-time migrations; the
          // second is the steady-state baseline.
          monitor.set_baseline(sim.group_seconds);
        } else if (enforced_since_decision > 2 && monitor.has_baseline() &&
                   monitor.deviates(sim.group_seconds)) {
          ++report.reprofiles;
          trace::global_counters().get("runtime.reprofiles").increment();
          profiler.reset();
          profiling_left = config_.profile_iterations;
          decided = false;
          if (traced) {
            tracer.instant(trace::kPlannerTrack, "reprofile",
                           vclock + sim.makespan, "iteration", iter);
          }
          TAHOE_DEBUG("workload variation detected at iteration "
                      << iter << "; re-profiling");
        }
      }
    }

    vclock += sim.makespan;
    if (traced) {
      // Per-iteration counter snapshot: cumulative run totals plus every
      // registered metric, all on the runtime track.
      tracer.counter(trace::kRuntimeTrack, "bytes_moved", vclock,
                     report.bytes_moved);
      tracer.counter(trace::kRuntimeTrack, "migrations", vclock,
                     report.migrations);
      tracer.counter(trace::kRuntimeTrack, "stall_us", vclock,
                     static_cast<std::uint64_t>(report.stall_seconds * 1e6));
      for (const auto& [name, value] : trace::global_counters().snapshot()) {
        tracer.counter(trace::kRuntimeTrack, name.c_str(), vclock, value);
      }
    }
  }

  report.strategy = strategy;
  return report;
}

RunReport Runtime::run_static(Application& app, memsim::DeviceId tier) {
  memsim::Machine machine = config_.machine;
  TAHOE_REQUIRE(tier < machine.devices.size(), "tier out of range");
  // Virtually enlarge the pinned tier.
  std::uint64_t big = 0;
  for (const memsim::DeviceModel& d : machine.devices) {
    big = std::max(big, d.capacity);
  }
  machine.devices[tier].capacity = big;

  AppState state = prepare(app, /*huge_tiers=*/true);
  for (const ObjectInfo& o : state.objects) {
    for (std::size_t c = 0; c < o.chunk_bytes.size(); ++c) {
      state.placement.set(o.id, c, tier);
    }
  }

  RunReport report;
  report.workload = app.name();
  report.policy = tier == memsim::kDram ? "dram-only" : "nvm-only";

  task::SimExecutor executor;
  task::SimExecutor::Options opts;
  opts.check_capacity = false;  // single-tier run; nothing moves
  trace::Tracer& tracer = trace::global();
  double vclock = 0.0;
  if (tracer.enabled()) {
    name_standard_tracks(opts.workers != 0 ? opts.workers : machine.workers);
    opts.tracer = &tracer;
  }
  for (std::size_t iter = 0; iter < app.iterations(); ++iter) {
    task::GraphBuilder builder;
    app.build_iteration(builder, iter);
    const task::TaskGraph graph = builder.build();
    opts.trace_time_offset = vclock;
    const task::SimReport sim =
        executor.run(graph, machine, state.placement, {}, opts);
    vclock += sim.makespan;
    report.iteration_seconds.push_back(sim.makespan);
    report.compute_seconds += sim.makespan;
  }
  return report;
}

RunReport Runtime::run_pinned(Application& app,
                              const std::vector<std::string>& dram_objects) {
  AppState state = prepare(app, /*huge_tiers=*/true);
  std::uint64_t pinned_bytes = 0;
  for (const ObjectInfo& o : state.objects) {
    const bool in_dram = std::find(dram_objects.begin(), dram_objects.end(),
                                   o.name) != dram_objects.end();
    for (std::size_t c = 0; c < o.chunk_bytes.size(); ++c) {
      state.placement.set(o.id, c, in_dram ? memsim::kDram : memsim::kNvm);
    }
    if (in_dram) pinned_bytes += o.total_bytes();
  }
  memsim::Machine machine = config_.machine;
  machine.devices[memsim::kDram].capacity =
      std::max(machine.dram().capacity, pinned_bytes);

  RunReport report;
  report.workload = app.name();
  report.policy = "pinned";

  task::SimExecutor executor;
  task::SimExecutor::Options opts;
  opts.check_capacity = false;  // fixed placement, nothing moves
  trace::Tracer& tracer = trace::global();
  double vclock = 0.0;
  if (tracer.enabled()) {
    name_standard_tracks(opts.workers != 0 ? opts.workers : machine.workers);
    opts.tracer = &tracer;
  }
  for (std::size_t iter = 0; iter < app.iterations(); ++iter) {
    task::GraphBuilder builder;
    app.build_iteration(builder, iter);
    const task::TaskGraph graph = builder.build();
    opts.trace_time_offset = vclock;
    const task::SimReport sim =
        executor.run(graph, machine, state.placement, {}, opts);
    vclock += sim.makespan;
    report.iteration_seconds.push_back(sim.makespan);
    report.compute_seconds += sim.makespan;
  }
  return report;
}

bool Runtime::run_real(Application& app,
                       const std::vector<task::ScheduledCopy>& schedule,
                       unsigned workers) {
  TAHOE_REQUIRE(config_.backing == hms::Backing::Real,
                "run_real requires real backing");
  AppState state = prepare(app, /*huge_tiers=*/false);
  name_standard_tracks(workers);
  hms::MigrationEngine engine(*state.registry,
                              hms::MigrationEngine::Mode::HelperThread);
  task::Executor executor(workers);

  for (std::size_t iter = 0; iter < app.iterations(); ++iter) {
    task::GraphBuilder builder;
    app.build_iteration(builder, iter);
    const task::TaskGraph graph = builder.build();
    executor.run(graph, [&](task::GroupId g) {
      // Fire this group's proactive copies, then wait for the ones the
      // group needs — the paper's phase-boundary protocol.
      for (const task::ScheduledCopy& c : schedule) {
        if (c.trigger_group == g) {
          engine.enqueue(hms::MigrationRequest{c.object, c.chunk, c.dst,
                                               c.needed_group});
        }
      }
      engine.wait_tag(g);
    });
  }
  engine.drain();
  return app.verify(*state.registry);
}

}  // namespace tahoe::core
