#include "core/runtime.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/assert.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "core/adaptivity.hpp"
#include "core/initial_placement.hpp"
#include "core/profiles.hpp"
#include "hms/migration.hpp"
#include "hms/space_manager.hpp"
#include "task/executor.hpp"
#include "task/sim_executor.hpp"
#include "trace/counters.hpp"
#include "trace/telemetry.hpp"
#include "trace/trace.hpp"

namespace tahoe::core {

namespace {

/// Register the standard track labels on the global tracer (no-op when
/// tracing is off). Shared by the simulated and real execution paths.
void name_standard_tracks(std::uint32_t workers) {
  trace::Tracer& tracer = trace::global();
  if (!tracer.enabled()) return;
  for (std::uint32_t w = 0; w < workers; ++w) {
    tracer.set_track_name(w, "worker " + std::to_string(w));
  }
  tracer.set_track_name(trace::kMigrationTrack, "migration engine");
  tracer.set_track_name(trace::kPlannerTrack, "planner");
  tracer.set_track_name(trace::kRuntimeTrack, "runtime phases");
}

/// Replay the planned schedule against a hypothetical occupancy of every
/// constrained tier and return the first object whose fill cannot reserve
/// space even after `retries` extra attempts (injected vetoes model racing
/// consumers of the tier). Returns kInvalidObject when the whole schedule
/// reserves cleanly. On two-tier machines this makes exactly the same
/// try_reserve calls in the same order as the original single-tier replay,
/// so seeded fault-injection sequences are preserved.
hms::ObjectId first_unreservable(
    const PlanInputs& in, const std::vector<task::ScheduledCopy>& schedule,
    const memsim::Machine& machine, int retries) {
  const memsim::TierId cap_tier = machine.capacity_tier();
  std::vector<hms::SpaceManager> spaces;
  spaces.reserve(cap_tier);
  for (memsim::TierId t = 0; t < cap_tier; ++t) {
    spaces.emplace_back(machine.tier(t).capacity);
  }
  for (const auto& [unit, dev] : in.current.entries()) {
    if (dev != cap_tier) {
      (void)spaces[dev].add(unit.first, unit.second,
                            in.unit_bytes(unit.first, unit.second));
    }
  }
  // Walk in trigger order (stable, so same-group evictions precede fills
  // exactly as the schedule lays them out).
  std::vector<std::size_t> order(schedule.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&schedule](std::size_t a, std::size_t b) {
                     return schedule[a].trigger_group <
                            schedule[b].trigger_group;
                   });
  for (const std::size_t i : order) {
    const task::ScheduledCopy& c = schedule[i];
    if (c.dst == cap_tier) {
      for (hms::SpaceManager& s : spaces) s.remove(c.object, c.chunk);
      continue;
    }
    if (spaces[c.dst].resident(c.object, c.chunk)) continue;
    // A fill onto one constrained tier vacates any other constrained tier
    // the unit occupied (moves between constrained tiers free the source).
    for (memsim::TierId t = 0; t < cap_tier; ++t) {
      if (t != c.dst) spaces[t].remove(c.object, c.chunk);
    }
    bool reserved = false;
    for (int attempt = 0; attempt <= retries && !reserved; ++attempt) {
      reserved = spaces[c.dst].try_reserve(c.object, c.chunk, c.bytes);
    }
    if (!reserved) return c.object;
  }
  return hms::kInvalidObject;
}

}  // namespace

PlanDecision Runtime::decide_validated(Policy& policy, PlanInputs inputs,
                                       std::vector<hms::ObjectId>& pinned,
                                       RunReport& report,
                                       std::size_t iteration) {
  // Resolve raw ids to allocation names for the provenance records.
  const auto object_name = [&inputs](std::uint64_t id) -> std::string {
    for (const ObjectInfo& o : inputs.objects) {
      if (static_cast<std::uint64_t>(o.id) == id) return o.name;
    }
    return "object-" + std::to_string(id);
  };
  const auto record_plan = [&](const PlanDecision& decision, int round) {
    PlanRecord rec;
    rec.iteration = iteration;
    rec.replan_round = round;
    rec.strategy = decision.strategy;
    rec.local_gain = decision.local_gain;
    rec.global_gain = decision.global_gain;
    rec.predicted_gain = decision.predicted_gain;
    rec.schedule_copies = decision.schedule.size();
    rec.pinned_nvm.reserve(pinned.size());
    for (const hms::ObjectId id : pinned) {
      rec.pinned_nvm.push_back(object_name(id));
    }
    rec.candidates = decision.provenance;
    for (PlanCandidate& c : rec.candidates) c.object = object_name(c.object_id);
    report.plans.push_back(std::move(rec));
  };

  // Bounded: each round pins at least one more object, and a plan with
  // everything pinned schedules no fills at all.
  constexpr int kMaxRounds = 8;
  for (int round = 0;; ++round) {
    inputs.pinned_nvm = pinned;
    PlanDecision decision = policy.decide(inputs);
    if (config_.fixed_decision_seconds) {
      decision.decision_seconds = *config_.fixed_decision_seconds;
    }
    record_plan(decision, round);
    const hms::ObjectId offender =
        first_unreservable(inputs, decision.schedule, config_.machine,
                           config_.reservation_retries);
    if (offender == hms::kInvalidObject) return decision;
    if (round + 1 >= kMaxRounds) {
      // Last resort: keep the plan but strip the offender's fills so the
      // schedule stays capacity-safe.
      const memsim::TierId cap_tier = config_.machine.capacity_tier();
      std::erase_if(decision.schedule,
                    [offender, cap_tier](const task::ScheduledCopy& c) {
                      return c.object == offender && c.dst != cap_tier;
                    });
      TAHOE_WARN("plan validation gave up after " << kMaxRounds
                                                  << " rounds; dropping DRAM "
                                                     "fills of object "
                                                  << offender);
      return decision;
    }
    pinned.push_back(offender);
    ++report.plans_degraded;
    trace::global_counters().get("plan.degraded").increment();
    TAHOE_WARN("DRAM reservation for object "
               << offender << " failed "
               << (config_.reservation_retries + 1)
               << " times; pinning it to NVM and re-planning");
  }
}

std::vector<ObjectInfo> collect_objects(const hms::ObjectRegistry& registry) {
  std::vector<ObjectInfo> out;
  for (const hms::ObjectId id : registry.live_objects()) {
    const hms::DataObject& obj = registry.get(id);
    ObjectInfo info;
    info.id = id;
    info.name = std::string(obj.name());
    info.static_ref_estimate = obj.static_ref_estimate;
    info.chunk_bytes.reserve(obj.num_chunks());
    for (const hms::Chunk& c : obj.chunks()) info.chunk_bytes.push_back(c.bytes);
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<task::TierHint> compute_tier_hints(
    const task::TaskGraph& graph, const hms::ObjectRegistry& registry,
    const std::vector<task::ScheduledCopy>& schedule,
    memsim::TierId hot_tiers) {
  // Start from the registry's current placement...
  std::map<hms::ObjectId, std::vector<memsim::DeviceId>> device;
  for (const hms::ObjectId id : registry.live_objects()) {
    const hms::DataObject& obj = registry.get(id);
    std::vector<memsim::DeviceId>& d = device[id];
    d.reserve(obj.num_chunks());
    for (const hms::Chunk& c : obj.chunks()) d.push_back(c.device);
  }
  // ...and replay the plan's copies group by group: a copy with
  // needed_group g is complete before group g runs, so tasks of group >= g
  // see its destination tier.
  std::vector<std::vector<const task::ScheduledCopy*>> due(graph.num_groups());
  for (const task::ScheduledCopy& c : schedule) {
    if (c.needed_group < graph.num_groups()) due[c.needed_group].push_back(&c);
  }
  std::vector<task::TierHint> hints(graph.num_tasks(), task::TierHint::kHot);
  for (task::GroupId g = 0; g < graph.num_groups(); ++g) {
    for (const task::ScheduledCopy* c : due[g]) {
      auto it = device.find(c->object);
      if (it == device.end()) continue;
      if (c->chunk < it->second.size()) it->second[c->chunk] = c->dst;
    }
    const task::Group& grp = graph.group(g);
    for (task::TaskId id = grp.first_task; id < grp.last_task; ++id) {
      bool nvm_bound = false;
      for (const task::DataAccess& a : graph.task(id).accesses) {
        if (!a.reads()) continue;
        const auto it = device.find(a.object);
        if (it == device.end()) continue;  // unknown object: assume hot
        const std::vector<memsim::DeviceId>& d = it->second;
        if (a.chunk == task::kAllChunks) {
          for (const memsim::DeviceId dev : d) nvm_bound |= dev >= hot_tiers;
        } else if (a.chunk < d.size()) {
          nvm_bound |= d[a.chunk] >= hot_tiers;
        }
        if (nvm_bound) break;
      }
      if (nvm_bound) hints[id] = task::TierHint::kCold;
    }
  }
  return hints;
}

Runtime::Runtime(RuntimeConfig config) : config_(std::move(config)) {
  TAHOE_REQUIRE(config_.profile_iterations >= 1,
                "need at least one profiling iteration");
  TAHOE_REQUIRE(config_.machine.devices.size() >= 2,
                "machine must have DRAM and NVM tiers");
}

Runtime::AppState Runtime::prepare(Application& app, bool huge_tiers) {
  const memsim::Machine& m = config_.machine;
  std::vector<std::uint64_t> caps;
  caps.reserve(m.devices.size());
  for (const memsim::DeviceModel& d : m.devices) caps.push_back(d.capacity);
  if (huge_tiers) {
    // Static baselines: the pinned tier must hold the full footprint.
    const std::uint64_t big =
        *std::max_element(caps.begin(), caps.end());
    for (std::uint64_t& c : caps) c = big;
  }

  AppState state;
  state.registry = std::make_unique<hms::ObjectRegistry>(caps, config_.backing);
  hms::ChunkingPolicy chunking;
  chunking.dram_capacity =
      config_.chunking ? m.tier(m.fastest_tier()).capacity : 0;
  app.setup(*state.registry, chunking);
  TAHOE_REQUIRE(state.registry->num_objects() > 0,
                "application allocated no data objects");
  state.objects = collect_objects(*state.registry);
  for (const ObjectInfo& o : state.objects) {
    for (std::size_t c = 0; c < o.chunk_bytes.size(); ++c) {
      state.placement.set(o.id, c, m.capacity_tier());
    }
  }
  return state;
}

RunReport Runtime::run(Application& app, Policy& policy) {
  const memsim::Machine& machine = config_.machine;
  const std::uint64_t faults_before = fault::global().total_injected();
  const std::uint64_t dropped_before = trace::global().dropped();
  trace::telemetry().begin_run("run:" + app.name() + "/" + policy.name());
  AppState state = prepare(app, /*huge_tiers=*/false);

  RunReport report;
  report.workload = app.name();
  report.policy = policy.name();
  report.tier_names.reserve(machine.devices.size());
  for (const memsim::DeviceModel& d : machine.devices) {
    report.tier_names.push_back(d.name);
  }
  const bool multi = machine.num_tiers() > 2;

  // Objects demoted by the degradation path; persists across re-profiles
  // so a repeatedly failing object is not retried forever.
  std::vector<hms::ObjectId> pinned;

  // Initial placement: free at allocation time.
  if (config_.initial_placement) {
    if (multi) {
      for (const auto& [u, t] : choose_initial_tiers(state.objects, machine)) {
        state.placement.set(u.object, u.chunk, t);
      }
    } else {
      for (const UnitKey& u : choose_initial_dram(
               state.objects, machine.tier(machine.fastest_tier()).capacity)) {
        state.placement.set(u.object, u.chunk, memsim::kDram);
      }
    }
  }

  Profiler profiler(memsim::Sampler(machine.sample_interval, machine.cpu_hz,
                                    machine.seed));
  AdaptiveMonitor monitor(config_.adapt_threshold);
  std::vector<task::ScheduledCopy> schedule;
  std::string strategy;
  std::size_t profiling_left =
      policy.needs_profiling() ? config_.profile_iterations : 0;
  bool decided = false;
  std::size_t enforced_since_decision = 0;

  task::SimExecutor executor;
  task::SimExecutor::Options opts;
  opts.unit_size = [&state](hms::ObjectId id, std::size_t chunk) {
    return state.registry->get(id).chunk(chunk).bytes;
  };
  opts.attribution = config_.attribution;

  // Attribution accumulators (filled only when config_.attribution).
  std::map<std::pair<std::string, std::string>, AttributionRow> attr_rows;
  std::map<std::string, ObjectMigrationRow> obj_rows;
  std::vector<std::string> group_names;
  std::map<hms::ObjectId, std::string> object_names;
  for (const ObjectInfo& o : state.objects) object_names[o.id] = o.name;
  const auto resolve_object = [&object_names](hms::ObjectId id) {
    const auto it = object_names.find(id);
    return it != object_names.end()
               ? it->second
               : "object-" + std::to_string(static_cast<std::uint64_t>(id));
  };

  // Tracing: the simulated timeline is laid out on one virtual clock that
  // accumulates iteration makespans, so a full run reads left-to-right in
  // chrome://tracing. All instrumentation vanishes when tracing is off.
  trace::Tracer& tracer = trace::global();
  const bool traced = tracer.enabled();
  double vclock = 0.0;
  if (traced) {
    name_standard_tracks(opts.workers != 0 ? opts.workers : machine.workers);
    opts.tracer = &tracer;
  }

  // Offline policies (no profiling) decide immediately on iteration 0's
  // graph; handled inside the loop below.
  const std::size_t iterations = app.iterations();
  TAHOE_REQUIRE(iterations >= 1, "application declares no iterations");

  for (std::size_t iter = 0; iter < iterations; ++iter) {
    task::GraphBuilder builder;
    app.build_iteration(builder, iter);
    const task::TaskGraph graph = builder.build();

    if (!decided && profiling_left == 0) {
      // Offline policy: decide on the first iteration's graph.
      PlanInputs inputs;
      inputs.graph = &graph;
      inputs.machine = &machine;
      inputs.profiles = nullptr;
      inputs.objects = state.objects;
      inputs.current = state.placement;
      PlanDecision decision =
          decide_validated(policy, std::move(inputs), pinned, report, iter);
      schedule = std::move(decision.schedule);
      strategy = decision.strategy;
      report.decision_seconds += decision.decision_seconds;
      report.overhead_seconds += decision.decision_seconds;
      decided = true;
      enforced_since_decision = 0;
      if (traced) {
        const std::string label = "decide " + strategy;
        tracer.instant(trace::kPlannerTrack, label.c_str(), vclock, "copies",
                       schedule.size(), "cost_us",
                       static_cast<std::uint64_t>(decision.decision_seconds *
                                                  1e6));
      }
    }

    const std::uint64_t samples_before = profiler.samples_taken();
    opts.trace_time_offset = vclock;
    const task::SimReport sim =
        executor.run(graph, machine, state.placement, schedule, opts);
    report.iteration_seconds.push_back(sim.makespan);
    report.compute_seconds += sim.makespan;
    report.tasks_executed += graph.num_tasks();
    report.bytes_moved += sim.bytes_copied;
    // Count only copies that moved data (no-op copies are free).
    report.migrations += sim.copies_done;
    report.copy_busy_seconds += sim.copy_busy_seconds;
    report.stall_seconds += sim.stall_seconds;
    report.overhead_seconds +=
        static_cast<double>(graph.num_groups()) * config_.sync_cost_seconds;

    if (config_.attribution) {
      if (group_names.size() < graph.num_groups()) {
        group_names.resize(graph.num_groups());
      }
      for (task::GroupId g = 0; g < graph.num_groups(); ++g) {
        group_names[g] = graph.group(g).name;
      }
      for (const task::AccessTally& t : sim.access_tallies) {
        const std::string gname = t.group < group_names.size()
                                      ? group_names[t.group]
                                      : std::to_string(t.group);
        AttributionRow& row = attr_rows[{gname, resolve_object(t.object)}];
        row.tasks += t.tasks;
        if (multi) {
          if (row.tier_loads.size() < machine.devices.size()) {
            row.tier_loads.resize(machine.devices.size(), 0);
            row.tier_stores.resize(machine.devices.size(), 0);
          }
          row.tier_loads[t.device] += t.loads;
          row.tier_stores[t.device] += t.stores;
        } else if (t.device == memsim::kDram) {
          row.dram_loads += t.loads;
          row.dram_stores += t.stores;
        } else {
          row.nvm_loads += t.loads;
          row.nvm_stores += t.stores;
        }
      }
      for (const task::CopyTally& t : sim.copy_tallies) {
        ObjectMigrationRow& row = obj_rows[resolve_object(t.object)];
        if (t.dst < t.src) {  // toward a faster tier
          row.promotions += t.copies;
          row.bytes_promoted += t.bytes;
        } else {
          row.evictions += t.copies;
          row.bytes_evicted += t.bytes;
        }
        row.copies_hidden += t.hidden;
        if (multi) {
          TierFlowRow* flow = nullptr;
          for (TierFlowRow& f : row.flows) {
            if (f.src == t.src && f.dst == t.dst) {
              flow = &f;
              break;
            }
          }
          if (flow == nullptr) {
            row.flows.push_back(
                TierFlowRow{static_cast<std::uint32_t>(t.src),
                            static_cast<std::uint32_t>(t.dst), 0, 0});
            flow = &row.flows.back();
          }
          flow->copies += t.copies;
          flow->bytes += t.bytes;
        }
      }
    }

    if (profiling_left > 0) {
      profiler.observe(graph, sim);
      report.overhead_seconds +=
          static_cast<double>(profiler.samples_taken() - samples_before) *
          config_.sample_cost_seconds;
      if (traced) {
        tracer.complete(trace::kPlannerTrack, "profile", vclock, sim.makespan,
                        "iteration", iter, "samples",
                        profiler.samples_taken() - samples_before);
      }
      --profiling_left;
      if (profiling_left == 0) {
        PlanInputs inputs;
        inputs.graph = &graph;
        inputs.machine = &machine;
        inputs.profiles = &profiler.profiles();
        inputs.objects = state.objects;
        inputs.current = state.placement;
        PlanDecision decision =
            decide_validated(policy, std::move(inputs), pinned, report, iter);
        schedule = std::move(decision.schedule);
        strategy = decision.strategy;
        report.decision_seconds += decision.decision_seconds;
        report.overhead_seconds += decision.decision_seconds;
        decided = true;
        enforced_since_decision = 0;
        if (traced) {
          const std::string label = "decide " + strategy;
          tracer.instant(trace::kPlannerTrack, label.c_str(),
                         vclock + sim.makespan, "copies", schedule.size(),
                         "cost_us",
                         static_cast<std::uint64_t>(
                             decision.decision_seconds * 1e6));
        }
        TAHOE_DEBUG("decision for " << app.name() << ": " << strategy
                                    << ", " << schedule.size() << " copies");
      }
    } else if (decided) {
      ++enforced_since_decision;
      if (config_.adaptive && policy.needs_profiling()) {
        if (enforced_since_decision == 2) {
          // The first enforced iteration pays one-time migrations; the
          // second is the steady-state baseline.
          monitor.set_baseline(sim.group_seconds);
        } else if (enforced_since_decision > 2 && monitor.has_baseline() &&
                   monitor.deviates(sim.group_seconds)) {
          ++report.reprofiles;
          trace::global_counters().get("runtime.reprofiles").increment();
          profiler.reset();
          profiling_left = config_.profile_iterations;
          decided = false;
          if (traced) {
            tracer.instant(trace::kPlannerTrack, "reprofile",
                           vclock + sim.makespan, "iteration", iter);
          }
          TAHOE_DEBUG("workload variation detected at iteration "
                      << iter << "; re-profiling");
        }
      }
    }

    vclock += sim.makespan;
    if (traced) {
      // Per-iteration counter snapshot: cumulative run totals plus every
      // registered metric, all on the runtime track.
      tracer.counter(trace::kRuntimeTrack, "bytes_moved", vclock,
                     report.bytes_moved);
      tracer.counter(trace::kRuntimeTrack, "migrations", vclock,
                     report.migrations);
      tracer.counter(trace::kRuntimeTrack, "stall_us", vclock,
                     static_cast<std::uint64_t>(report.stall_seconds * 1e6));
      for (const auto& [name, value] : trace::global_counters().snapshot()) {
        tracer.counter(trace::kRuntimeTrack, name.c_str(), vclock, value);
      }
    }
  }

  report.strategy = strategy;
  report.failed_no_space = state.registry->stats().failed_no_space;
  report.faults_injected = fault::global().total_injected() - faults_before;
  report.trace_dropped_events = trace::global().dropped() - dropped_before;
  trace::sync_dropped_events_counter();

  if (config_.attribution) {
    // Fold the profiler's view in: raw sampled counts and their
    // interval-corrected estimates, so exports show what the planner saw
    // next to the ground truth.
    const PhaseProfiles& prof = profiler.profiles();
    for (task::GroupId g = 0; g < prof.groups.size(); ++g) {
      const std::string gname =
          g < group_names.size() ? group_names[g] : std::to_string(g);
      for (const auto& [unit, counts] : prof.groups[g].units) {
        AttributionRow& row = attr_rows[{gname, resolve_object(unit.object)}];
        row.sampled_loads += counts.loads;
        row.sampled_stores += counts.stores;
        row.est_loads += static_cast<std::uint64_t>(
            counts.est_loads(machine.sample_interval));
        row.est_stores += static_cast<std::uint64_t>(
            counts.est_stores(machine.sample_interval));
      }
    }
    report.attribution.reserve(attr_rows.size());
    for (auto& [key, row] : attr_rows) {
      row.task_type = key.first;
      row.object = key.second;
      report.attribution.push_back(std::move(row));
    }
    report.objects.reserve(obj_rows.size());
    for (auto& [name, row] : obj_rows) {
      row.object = name;
      std::sort(row.flows.begin(), row.flows.end(),
                [](const TierFlowRow& a, const TierFlowRow& b) {
                  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
                });
      report.objects.push_back(std::move(row));
    }
  }
  return report;
}

RunReport Runtime::run_static(Application& app, memsim::DeviceId tier) {
  memsim::Machine machine = config_.machine;
  TAHOE_REQUIRE(tier < machine.devices.size(), "tier out of range");
  // Virtually enlarge the pinned tier.
  std::uint64_t big = 0;
  for (const memsim::DeviceModel& d : machine.devices) {
    big = std::max(big, d.capacity);
  }
  machine.devices[tier].capacity = big;

  AppState state = prepare(app, /*huge_tiers=*/true);
  for (const ObjectInfo& o : state.objects) {
    for (std::size_t c = 0; c < o.chunk_bytes.size(); ++c) {
      state.placement.set(o.id, c, tier);
    }
  }

  RunReport report;
  report.workload = app.name();
  if (machine.num_tiers() == 2) {
    report.policy = tier == memsim::kDram ? "dram-only" : "nvm-only";
  } else {
    report.policy = "tier" + std::to_string(tier) + "-only";
  }
  report.tier_names.reserve(machine.devices.size());
  for (const memsim::DeviceModel& d : machine.devices) {
    report.tier_names.push_back(d.name);
  }

  task::SimExecutor executor;
  task::SimExecutor::Options opts;
  opts.check_capacity = false;  // single-tier run; nothing moves
  trace::Tracer& tracer = trace::global();
  const std::uint64_t dropped_before = tracer.dropped();
  trace::telemetry().begin_run("run:" + app.name() + "/" + report.policy);
  double vclock = 0.0;
  if (tracer.enabled()) {
    name_standard_tracks(opts.workers != 0 ? opts.workers : machine.workers);
    opts.tracer = &tracer;
  }
  for (std::size_t iter = 0; iter < app.iterations(); ++iter) {
    task::GraphBuilder builder;
    app.build_iteration(builder, iter);
    const task::TaskGraph graph = builder.build();
    opts.trace_time_offset = vclock;
    const task::SimReport sim =
        executor.run(graph, machine, state.placement, {}, opts);
    vclock += sim.makespan;
    report.iteration_seconds.push_back(sim.makespan);
    report.compute_seconds += sim.makespan;
    report.tasks_executed += graph.num_tasks();
  }
  report.trace_dropped_events = tracer.dropped() - dropped_before;
  trace::sync_dropped_events_counter();
  return report;
}

RunReport Runtime::run_pinned(Application& app,
                              const std::vector<std::string>& dram_objects) {
  AppState state = prepare(app, /*huge_tiers=*/true);
  const memsim::TierId fast = config_.machine.fastest_tier();
  const memsim::TierId cap = config_.machine.capacity_tier();
  std::uint64_t pinned_bytes = 0;
  for (const ObjectInfo& o : state.objects) {
    const bool in_dram = std::find(dram_objects.begin(), dram_objects.end(),
                                   o.name) != dram_objects.end();
    for (std::size_t c = 0; c < o.chunk_bytes.size(); ++c) {
      state.placement.set(o.id, c, in_dram ? fast : cap);
    }
    if (in_dram) pinned_bytes += o.total_bytes();
  }
  memsim::Machine machine = config_.machine;
  machine.devices[fast].capacity =
      std::max(machine.tier(fast).capacity, pinned_bytes);

  RunReport report;
  report.workload = app.name();
  report.policy = "pinned";
  report.tier_names.reserve(machine.devices.size());
  for (const memsim::DeviceModel& d : machine.devices) {
    report.tier_names.push_back(d.name);
  }

  task::SimExecutor executor;
  task::SimExecutor::Options opts;
  opts.check_capacity = false;  // fixed placement, nothing moves
  trace::Tracer& tracer = trace::global();
  const std::uint64_t dropped_before = tracer.dropped();
  trace::telemetry().begin_run("run:" + app.name() + "/pinned");
  double vclock = 0.0;
  if (tracer.enabled()) {
    name_standard_tracks(opts.workers != 0 ? opts.workers : machine.workers);
    opts.tracer = &tracer;
  }
  for (std::size_t iter = 0; iter < app.iterations(); ++iter) {
    task::GraphBuilder builder;
    app.build_iteration(builder, iter);
    const task::TaskGraph graph = builder.build();
    opts.trace_time_offset = vclock;
    const task::SimReport sim =
        executor.run(graph, machine, state.placement, {}, opts);
    vclock += sim.makespan;
    report.iteration_seconds.push_back(sim.makespan);
    report.compute_seconds += sim.makespan;
    report.tasks_executed += graph.num_tasks();
  }
  report.trace_dropped_events = tracer.dropped() - dropped_before;
  trace::sync_dropped_events_counter();
  return report;
}

bool Runtime::run_real(Application& app,
                       const std::vector<task::ScheduledCopy>& schedule,
                       unsigned workers) {
  return run_real_report(app, schedule, workers).verified;
}

RunReport Runtime::run_real_report(
    Application& app, const std::vector<task::ScheduledCopy>& schedule,
    unsigned workers) {
  TAHOE_REQUIRE(config_.backing == hms::Backing::Real,
                "run_real requires real backing");
  const std::uint64_t faults_before = fault::global().total_injected();
  const std::uint64_t dropped_before = trace::global().dropped();
  // Real-executor runs have no virtual clock; the sampler's wall-clock
  // thread (if configured) does the ticking, this just marks the phase.
  trace::telemetry().begin_run("real:" + app.name());
  AppState state = prepare(app, /*huge_tiers=*/false);
  name_standard_tracks(workers);
  hms::MigrationEngine::Options eopts;
  eopts.mode = hms::MigrationEngine::Mode::HelperThread;
  eopts.max_retries = config_.migration_max_retries;
  hms::MigrationEngine engine(*state.registry, eopts);
  const std::unique_ptr<task::IExecutor> executor =
      task::make_executor(config_.executor_backend, workers);
  const double deadline = config_.migration_wait_deadline_seconds;

  for (std::size_t iter = 0; iter < app.iterations(); ++iter) {
    task::GraphBuilder builder;
    app.build_iteration(builder, iter);
    const task::TaskGraph graph = builder.build();
    // Executor-side overlap: NVM-bound tasks are deferred behind
    // DRAM-resident ones while the helper thread works through this
    // iteration's promotions (see compute_tier_hints).
    const std::vector<task::TierHint> hints =
        compute_tier_hints(graph, *state.registry, schedule);
    executor->run(graph, [&](task::GroupId g) {
      // Fire this group's proactive copies, then wait for the ones the
      // group needs — the paper's phase-boundary protocol. With a deadline
      // configured, a stalled helper cannot hold the application hostage:
      // requests the group is already past are cancelled and the tasks
      // simply read from the source tier.
      for (const task::ScheduledCopy& c : schedule) {
        if (c.trigger_group == g) {
          engine.enqueue(hms::MigrationRequest{c.object, c.chunk, c.dst,
                                               c.needed_group});
        }
      }
      if (deadline > 0.0) {
        if (!engine.wait_tag_for(g, deadline)) {
          const std::size_t n = engine.cancel_tag(g);
          TAHOE_WARN("group " << g << " migration wait exceeded " << deadline
                              << " s; cancelled " << n
                              << " queued request(s) and proceeding");
          // The one in-flight copy (if any) cannot be cancelled safely;
          // it is a single bounded memcpy, so finish the protocol on it.
          engine.wait_tag(g);
        }
      } else {
        engine.wait_tag(g);
      }
    }, hints);
  }
  engine.drain();

  RunReport report;
  report.workload = app.name();
  report.policy = "real";
  report.tier_names.reserve(config_.machine.devices.size());
  for (const memsim::DeviceModel& d : config_.machine.devices) {
    report.tier_names.push_back(d.name);
  }
  report.verified = app.verify(*state.registry);
  const hms::MigrationStats& ms = state.registry->stats();
  report.migrations = ms.migrations;
  report.bytes_moved = ms.bytes_moved;
  report.failed_no_space = ms.failed_no_space;
  report.migrations_retried = engine.retried();
  report.migrations_aborted = engine.aborted();
  report.migrations_cancelled = engine.cancelled();
  report.plans_degraded = engine.degraded_objects().size();
  report.faults_injected = fault::global().total_injected() - faults_before;
  report.tasks_executed = executor->stats().tasks_run;
  report.trace_dropped_events = trace::global().dropped() - dropped_before;
  trace::sync_dropped_events_counter();
  return report;
}

}  // namespace tahoe::core
