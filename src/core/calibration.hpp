// Offline hardware calibration.
//
// Once per machine configuration (never per application), the runtime runs
// two microbenchmarks through the simulator and the sampling emulation:
//
//  * STREAM-like (bandwidth-bound, maximum concurrency) — measures the
//    peak attainable NVM bandwidth used by the Eq. (1) classifier, and the
//    CF_bw constant factor as measured/predicted time on DRAM;
//  * pointer-chase (latency-bound, single dependent chain) — measures
//    CF_lat the same way.
//
// The constant factors absorb what the lightweight models ignore: cache
// filtering, memory-level parallelism, and sampling noise.
#pragma once

#include "core/perf_model.hpp"
#include "memsim/machine.hpp"

namespace tahoe::core {

struct CalibrationResult {
  double cf_bw = 1.0;
  double cf_lat = 1.0;
  double bw_peak_nvm = 0.0;   ///< bytes/s, via Eq. (1) on the NVM tier
  double bw_peak_dram = 0.0;  ///< bytes/s, same measurement on DRAM

  ModelConstants to_constants(double t1 = 0.80, double t2 = 0.10) const {
    return ModelConstants{cf_bw, cf_lat, bw_peak_nvm, t1, t2};
  }
};

/// Run the calibration workloads on `machine`. Deterministic.
CalibrationResult calibrate(const memsim::Machine& machine);

}  // namespace tahoe::core
