#include "core/adaptivity.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace tahoe::core {

void AdaptiveMonitor::set_baseline(std::vector<double> group_seconds) {
  baseline_ = std::move(group_seconds);
  baseline_total_ = 0.0;
  for (double s : baseline_) baseline_total_ += s;
}

bool AdaptiveMonitor::deviates(const std::vector<double>& group_seconds) const {
  TAHOE_REQUIRE(has_baseline(), "monitor has no baseline");
  if (group_seconds.size() != baseline_.size()) return true;  // shape changed

  double total = 0.0;
  for (double s : group_seconds) total += s;
  if (baseline_total_ > 0.0 &&
      std::fabs(total - baseline_total_) / baseline_total_ > threshold_) {
    return true;
  }
  for (std::size_t g = 0; g < baseline_.size(); ++g) {
    const double base = baseline_[g];
    if (baseline_total_ <= 0.0 || base < 0.01 * baseline_total_) continue;
    if (std::fabs(group_seconds[g] - base) / base > threshold_) return true;
  }
  return false;
}

}  // namespace tahoe::core
