// Tahoe runtime facade.
//
// Orchestrates the full lifecycle of the paper's system for an iterative
// task-parallel application:
//
//   allocate objects -> (optional) initial placement -> profile the first
//   iterations with sampling counters -> decide placement (policy) ->
//   enforce it with proactive helper-thread migration every remaining
//   iteration -> monitor for workload variation and re-profile when it
//   drifts.
//
// Two execution paths share this orchestration:
//   * run()/run_static() — deterministic simulated timing (all reported
//     numbers come from here);
//   * run_real() — real threads, real kernels, real memcpy migrations,
//     used by integration tests and examples to validate correctness of
//     the data-management machinery.
#pragma once

#include <memory>
#include <optional>

#include "core/application.hpp"
#include "core/policy.hpp"
#include "core/report.hpp"
#include "memsim/machine.hpp"
#include "task/executor.hpp"

namespace tahoe::core {

struct RuntimeConfig {
  memsim::Machine machine;
  /// Virtual backing skips payload allocation/copies; simulation results
  /// are identical. run_real() requires Real.
  hms::Backing backing = hms::Backing::Real;
  std::size_t profile_iterations = 2;
  bool initial_placement = true;
  bool chunking = true;
  bool adaptive = true;
  double adapt_threshold = 0.10;
  /// Modeled cost per collected hardware sample (counter readout).
  double sample_cost_seconds = 50e-9;
  /// Modeled cost of the queue-status check at each phase boundary.
  double sync_cost_seconds = 2e-6;

  // Degradation knobs (all fault-injection aware).
  /// Attempts to reserve DRAM for a planned fill before the object is
  /// pinned to NVM and the policy re-plans.
  int reservation_retries = 3;
  /// Copy-abort retries inside the real migration engine.
  int migration_max_retries = 3;
  /// Phase-boundary wait bound for run_real: if the copies a group needs
  /// are not done within this budget (e.g. a stalled helper), the pending
  /// requests are cancelled and the group proceeds from the source tier.
  /// 0 keeps the original unbounded wait.
  double migration_wait_deadline_seconds = 0.0;
  /// Override for the measured planning cost, making reports
  /// byte-reproducible (golden determinism tests). nullopt keeps the
  /// steady_clock measurement.
  std::optional<double> fixed_decision_seconds;
  /// Collect per-(task type, object) access attribution and per-object
  /// migration tallies into the report (RunReport::attribution/objects).
  /// Costs one map insertion per simulated task access pair, so it is off
  /// by default and enabled alongside --report-json in the binaries.
  bool attribution = false;
  /// Work-stealing backend used by run_real()/run_real_report(). Simulated
  /// runs are unaffected (SimExecutor is its own deterministic machine).
  task::ExecutorBackend executor_backend = task::ExecutorBackend::kChaseLev;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config);

  /// Simulated run under a placement policy.
  RunReport run(Application& app, Policy& policy);

  /// Simulated run with every object pinned to one tier (the DRAM-only /
  /// NVM-only baselines). The tier is virtually enlarged to hold the whole
  /// footprint.
  RunReport run_static(Application& app, memsim::DeviceId tier);

  /// Simulated run with a fixed manual placement: the named objects live
  /// in DRAM (whole objects, all chunks), everything else on NVM, and no
  /// migration ever happens. This is the per-object placement-impact
  /// experiment of the paper (its Fig. 4).
  RunReport run_pinned(Application& app,
                       const std::vector<std::string>& dram_objects);

  /// Real execution (threads + memcpy migrations driven by `schedule`).
  /// Returns the application's verify() result.
  bool run_real(Application& app,
                const std::vector<task::ScheduledCopy>& schedule,
                unsigned workers);

  /// Real execution with full degradation bookkeeping: the report carries
  /// verify() in `verified` plus the registry/engine failure counters.
  /// Only deterministic quantities are filled in, so two runs with the
  /// same seeds serialize identically.
  RunReport run_real_report(Application& app,
                            const std::vector<task::ScheduledCopy>& schedule,
                            unsigned workers);

  const memsim::Machine& machine() const noexcept { return config_.machine; }
  const RuntimeConfig& config() const noexcept { return config_; }

 private:
  struct AppState {
    std::unique_ptr<hms::ObjectRegistry> registry;
    std::vector<ObjectInfo> objects;
    hms::PlacementMap placement;
  };

  /// Allocate the app's objects and build the object inventory.
  AppState prepare(Application& app, bool huge_tiers);

  /// Run the policy, then validate that every planned DRAM fill can
  /// actually reserve its space (an armed FaultInjector may veto
  /// reservations). An object whose reservation keeps failing is pinned to
  /// NVM and the policy re-plans without it — the paper runtime's graceful
  /// degradation to a smaller effective DRAM. `pinned` persists across
  /// calls so re-profiling keeps earlier demotions. Every planning round
  /// (including degraded re-plans) is appended to `report.plans` with
  /// object names resolved, tagged with `iteration`.
  PlanDecision decide_validated(Policy& policy, PlanInputs inputs,
                                std::vector<hms::ObjectId>& pinned,
                                RunReport& report, std::size_t iteration);

  RuntimeConfig config_;
};

/// Collect the planner-facing object inventory from a registry.
std::vector<ObjectInfo> collect_objects(const hms::ObjectRegistry& registry);

/// Executor-side half of the migration/computation overlap: derive one
/// scheduling hint per task from the plan's DRAM residency of the task's
/// inputs. A task is `kHot` when every chunk it reads will be DRAM-resident
/// by the time its group starts (current registry placement plus every
/// ScheduledCopy whose needed_group is not after the task's group) and
/// `kCold` otherwise, so the executor defers NVM-bound tasks while their
/// objects' promotions are still in flight. Accesses to objects unknown to
/// the registry are treated as hot. On N-tier machines, `hot_tiers` sets
/// how many of the fastest tiers count as "hot" (the default 1 reproduces
/// the DRAM/NVM split).
std::vector<task::TierHint> compute_tier_hints(
    const task::TaskGraph& graph, const hms::ObjectRegistry& registry,
    const std::vector<task::ScheduledCopy>& schedule,
    memsim::TierId hot_tiers = 1);

}  // namespace tahoe::core
