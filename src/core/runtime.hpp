// Tahoe runtime facade.
//
// Orchestrates the full lifecycle of the paper's system for an iterative
// task-parallel application:
//
//   allocate objects -> (optional) initial placement -> profile the first
//   iterations with sampling counters -> decide placement (policy) ->
//   enforce it with proactive helper-thread migration every remaining
//   iteration -> monitor for workload variation and re-profile when it
//   drifts.
//
// Two execution paths share this orchestration:
//   * run()/run_static() — deterministic simulated timing (all reported
//     numbers come from here);
//   * run_real() — real threads, real kernels, real memcpy migrations,
//     used by integration tests and examples to validate correctness of
//     the data-management machinery.
#pragma once

#include <memory>
#include <optional>

#include "core/application.hpp"
#include "core/policy.hpp"
#include "core/report.hpp"
#include "memsim/machine.hpp"

namespace tahoe::core {

struct RuntimeConfig {
  memsim::Machine machine;
  /// Virtual backing skips payload allocation/copies; simulation results
  /// are identical. run_real() requires Real.
  hms::Backing backing = hms::Backing::Real;
  std::size_t profile_iterations = 2;
  bool initial_placement = true;
  bool chunking = true;
  bool adaptive = true;
  double adapt_threshold = 0.10;
  /// Modeled cost per collected hardware sample (counter readout).
  double sample_cost_seconds = 50e-9;
  /// Modeled cost of the queue-status check at each phase boundary.
  double sync_cost_seconds = 2e-6;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config);

  /// Simulated run under a placement policy.
  RunReport run(Application& app, Policy& policy);

  /// Simulated run with every object pinned to one tier (the DRAM-only /
  /// NVM-only baselines). The tier is virtually enlarged to hold the whole
  /// footprint.
  RunReport run_static(Application& app, memsim::DeviceId tier);

  /// Simulated run with a fixed manual placement: the named objects live
  /// in DRAM (whole objects, all chunks), everything else on NVM, and no
  /// migration ever happens. This is the per-object placement-impact
  /// experiment of the paper (its Fig. 4).
  RunReport run_pinned(Application& app,
                       const std::vector<std::string>& dram_objects);

  /// Real execution (threads + memcpy migrations driven by `schedule`).
  /// Returns the application's verify() result.
  bool run_real(Application& app,
                const std::vector<task::ScheduledCopy>& schedule,
                unsigned workers);

  const memsim::Machine& machine() const noexcept { return config_.machine; }
  const RuntimeConfig& config() const noexcept { return config_; }

 private:
  struct AppState {
    std::unique_ptr<hms::ObjectRegistry> registry;
    std::vector<ObjectInfo> objects;
    hms::PlacementMap placement;
  };

  /// Allocate the app's objects and build the object inventory.
  AppState prepare(Application& app, bool huge_tiers);

  RuntimeConfig config_;
};

/// Collect the planner-facing object inventory from a registry.
std::vector<ObjectInfo> collect_objects(const hms::ObjectRegistry& registry);

}  // namespace tahoe::core
