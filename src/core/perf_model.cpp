#include "core/perf_model.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace tahoe::core {

PerfModel::PerfModel(ModelConstants constants, memsim::DeviceModel dram,
                     memsim::DeviceModel nvm, double copy_engine_bw,
                     std::uint64_t sample_interval)
    : constants_(constants),
      dram_(std::move(dram)),
      nvm_(std::move(nvm)),
      copy_bw_(copy_engine_bw),
      interval_(sample_interval) {
  TAHOE_REQUIRE(copy_bw_ > 0.0, "copy bandwidth must be positive");
  TAHOE_REQUIRE(interval_ > 0, "sample interval must be positive");
  TAHOE_REQUIRE(constants_.t2 < constants_.t1, "thresholds must satisfy t2 < t1");
}

double PerfModel::bandwidth_estimate(const memsim::SampledCounts& s,
                                     double phase_seconds) const {
  if (phase_seconds <= 0.0) return 0.0;
  const double active = s.active_fraction();
  if (active <= 0.0) return 0.0;
  const double accessed_bytes =
      (s.est_loads(interval_) + s.est_stores(interval_)) *
      static_cast<double>(kCacheLine);
  return accessed_bytes / (active * phase_seconds);
}

Sensitivity PerfModel::classify(double bw_estimate) const {
  TAHOE_REQUIRE(constants_.bw_peak_nvm > 0.0,
                "classify requires a calibrated peak bandwidth");
  const double ratio = bw_estimate / constants_.bw_peak_nvm;
  if (ratio >= constants_.t1) return Sensitivity::Bandwidth;
  if (ratio <= constants_.t2) return Sensitivity::Latency;
  return Sensitivity::Mixed;
}

double PerfModel::benefit_bw(const memsim::SampledCounts& s,
                             bool distinguish_rw) const {
  const double line = static_cast<double>(kCacheLine);
  const double loads = s.est_loads(interval_);
  const double stores = s.est_stores(interval_);
  double nvm_time = 0.0;
  if (distinguish_rw) {
    // Eq. (4): reads and writes charged at the NVM read/write bandwidths.
    nvm_time = loads * line / nvm_.read_bw + stores * line / nvm_.write_bw;
  } else {
    // Eq. (2): a single NVM bandwidth (read) for all traffic.
    nvm_time = (loads + stores) * line / nvm_.read_bw;
  }
  const double dram_time = (loads + stores) * line / dram_.read_bw;
  return (nvm_time - dram_time) * constants_.cf_bw;
}

double PerfModel::benefit_lat(const memsim::SampledCounts& s,
                              bool distinguish_rw) const {
  const double loads = s.est_loads(interval_);
  const double stores = s.est_stores(interval_);
  double nvm_time = 0.0;
  if (distinguish_rw) {
    // Eq. (5).
    nvm_time = loads * nvm_.read_lat_s + stores * nvm_.write_lat_s;
  } else {
    // Eq. (3).
    nvm_time = (loads + stores) * nvm_.read_lat_s;
  }
  const double dram_time = (loads + stores) * dram_.read_lat_s;
  return (nvm_time - dram_time) * constants_.cf_lat;
}

double PerfModel::benefit(const memsim::SampledCounts& s, double phase_seconds,
                          bool distinguish_rw) const {
  if (s.accesses() == 0) return 0.0;
  switch (classify(bandwidth_estimate(s, phase_seconds))) {
    case Sensitivity::Bandwidth:
      return benefit_bw(s, distinguish_rw);
    case Sensitivity::Latency:
      return benefit_lat(s, distinguish_rw);
    case Sensitivity::Mixed:
      return std::max(benefit_bw(s, distinguish_rw),
                      benefit_lat(s, distinguish_rw));
  }
  TAHOE_UNREACHABLE("bad sensitivity");
}

double PerfModel::movement_cost(std::uint64_t bytes, double overlap_window,
                                bool to_dram) const {
  return std::max(copy_seconds(bytes, to_dram) - overlap_window, 0.0);
}

double PerfModel::copy_seconds(std::uint64_t bytes, bool to_dram) const {
  const double bw =
      to_dram ? std::min({copy_bw_, nvm_.read_bw, dram_.write_bw})
              : std::min({copy_bw_, dram_.read_bw, nvm_.write_bw});
  return static_cast<double>(bytes) / bw;
}

}  // namespace tahoe::core
