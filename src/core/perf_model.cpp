#include "core/perf_model.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace tahoe::core {

PerfModel::PerfModel(ModelConstants constants, memsim::DeviceModel dram,
                     memsim::DeviceModel nvm, double copy_engine_bw,
                     std::uint64_t sample_interval)
    : constants_(constants),
      copy_bw_(copy_engine_bw),
      interval_(sample_interval) {
  tiers_.push_back(std::move(dram));
  tiers_.push_back(std::move(nvm));
  TAHOE_REQUIRE(copy_bw_ > 0.0, "copy bandwidth must be positive");
  TAHOE_REQUIRE(interval_ > 0, "sample interval must be positive");
  TAHOE_REQUIRE(constants_.t2 < constants_.t1, "thresholds must satisfy t2 < t1");
}

PerfModel::PerfModel(ModelConstants constants, const memsim::Machine& machine)
    : constants_(constants),
      tiers_(machine.devices),
      copy_bw_(machine.copy_engine_bw),
      copy_paths_(machine.copy_paths),
      interval_(machine.sample_interval) {
  TAHOE_REQUIRE(tiers_.size() >= 2, "perf model needs at least two tiers");
  TAHOE_REQUIRE(copy_bw_ > 0.0, "copy bandwidth must be positive");
  TAHOE_REQUIRE(interval_ > 0, "sample interval must be positive");
  TAHOE_REQUIRE(constants_.t2 < constants_.t1, "thresholds must satisfy t2 < t1");
}

double PerfModel::bandwidth_estimate(const memsim::SampledCounts& s,
                                     double phase_seconds) const {
  if (phase_seconds <= 0.0) return 0.0;
  const double active = s.active_fraction();
  if (active <= 0.0) return 0.0;
  const double accessed_bytes =
      (s.est_loads(interval_) + s.est_stores(interval_)) *
      static_cast<double>(kCacheLine);
  return accessed_bytes / (active * phase_seconds);
}

Sensitivity PerfModel::classify(double bw_estimate) const {
  TAHOE_REQUIRE(constants_.bw_peak_nvm > 0.0,
                "classify requires a calibrated peak bandwidth");
  const double ratio = bw_estimate / constants_.bw_peak_nvm;
  if (ratio >= constants_.t1) return Sensitivity::Bandwidth;
  if (ratio <= constants_.t2) return Sensitivity::Latency;
  return Sensitivity::Mixed;
}

double PerfModel::benefit_bw(const memsim::SampledCounts& s,
                             bool distinguish_rw) const {
  return benefit_bw_pair(s, distinguish_rw,
                         static_cast<memsim::TierId>(tiers_.size() - 1), 0);
}

double PerfModel::benefit_lat(const memsim::SampledCounts& s,
                              bool distinguish_rw) const {
  return benefit_lat_pair(s, distinguish_rw,
                          static_cast<memsim::TierId>(tiers_.size() - 1), 0);
}

double PerfModel::benefit(const memsim::SampledCounts& s, double phase_seconds,
                          bool distinguish_rw) const {
  return benefit_pair(s, phase_seconds, distinguish_rw,
                      static_cast<memsim::TierId>(tiers_.size() - 1), 0);
}

double PerfModel::benefit_bw_pair(const memsim::SampledCounts& s,
                                  bool distinguish_rw, memsim::TierId src,
                                  memsim::TierId dst) const {
  const memsim::DeviceModel& from = tiers_.at(src);
  const memsim::DeviceModel& to = tiers_.at(dst);
  const double line = static_cast<double>(kCacheLine);
  const double loads = s.est_loads(interval_);
  const double stores = s.est_stores(interval_);
  double src_time = 0.0;
  if (distinguish_rw) {
    // Eq. (4): reads and writes charged at the source read/write bandwidths.
    src_time = loads * line / from.read_bw + stores * line / from.write_bw;
  } else {
    // Eq. (2): a single source bandwidth (read) for all traffic.
    src_time = (loads + stores) * line / from.read_bw;
  }
  const double dst_time = (loads + stores) * line / to.read_bw;
  return (src_time - dst_time) * constants_.cf_bw;
}

double PerfModel::benefit_lat_pair(const memsim::SampledCounts& s,
                                   bool distinguish_rw, memsim::TierId src,
                                   memsim::TierId dst) const {
  const memsim::DeviceModel& from = tiers_.at(src);
  const memsim::DeviceModel& to = tiers_.at(dst);
  const double loads = s.est_loads(interval_);
  const double stores = s.est_stores(interval_);
  double src_time = 0.0;
  if (distinguish_rw) {
    // Eq. (5).
    src_time = loads * from.read_lat_s + stores * from.write_lat_s;
  } else {
    // Eq. (3).
    src_time = (loads + stores) * from.read_lat_s;
  }
  const double dst_time = (loads + stores) * to.read_lat_s;
  return (src_time - dst_time) * constants_.cf_lat;
}

double PerfModel::benefit_pair(const memsim::SampledCounts& s,
                               double phase_seconds, bool distinguish_rw,
                               memsim::TierId src, memsim::TierId dst) const {
  if (s.accesses() == 0) return 0.0;
  switch (classify(bandwidth_estimate(s, phase_seconds))) {
    case Sensitivity::Bandwidth:
      return benefit_bw_pair(s, distinguish_rw, src, dst);
    case Sensitivity::Latency:
      return benefit_lat_pair(s, distinguish_rw, src, dst);
    case Sensitivity::Mixed:
      return std::max(benefit_bw_pair(s, distinguish_rw, src, dst),
                      benefit_lat_pair(s, distinguish_rw, src, dst));
  }
  TAHOE_UNREACHABLE("bad sensitivity");
}

double PerfModel::movement_cost(std::uint64_t bytes, double overlap_window,
                                bool to_dram) const {
  return std::max(copy_seconds(bytes, to_dram) - overlap_window, 0.0);
}

double PerfModel::copy_seconds(std::uint64_t bytes, bool to_dram) const {
  const memsim::TierId last = static_cast<memsim::TierId>(tiers_.size() - 1);
  return to_dram ? copy_seconds_pair(bytes, last, 0)
                 : copy_seconds_pair(bytes, 0, last);
}

double PerfModel::movement_cost_pair(std::uint64_t bytes,
                                     double overlap_window, memsim::TierId src,
                                     memsim::TierId dst) const {
  return std::max(copy_seconds_pair(bytes, src, dst) - overlap_window, 0.0);
}

double PerfModel::copy_seconds_pair(std::uint64_t bytes, memsim::TierId src,
                                    memsim::TierId dst) const {
  const double bw = std::min({pair_copy_bw(src, dst), tiers_.at(src).read_bw,
                              tiers_.at(dst).write_bw});
  return static_cast<double>(bytes) / bw;
}

double PerfModel::pair_copy_bw(memsim::TierId src,
                               memsim::TierId dst) const noexcept {
  for (const memsim::CopyPathLimit& p : copy_paths_) {
    if (p.src == src && p.dst == dst) return p.bw;
  }
  return copy_bw_;
}

}  // namespace tahoe::core
