// Application interface: what an iterative task-parallel program exposes
// to the Tahoe runtime.
//
// An application allocates its data objects through the ObjectRegistry
// (the `tahoe_malloc` analogue, optionally chunked per the policy), then
// rebuilds its per-iteration task graph on demand. The same builder
// function runs every iteration; workloads with drift can vary the
// declared traffic with the iteration number, which is what exercises the
// adaptivity machinery.
#pragma once

#include <cstdint>
#include <string>

#include "hms/chunking.hpp"
#include "hms/registry.hpp"
#include "task/graph.hpp"

namespace tahoe::core {

class Application {
 public:
  virtual ~Application() = default;

  virtual std::string name() const = 0;

  /// Number of main-loop iterations to execute.
  virtual std::size_t iterations() const = 0;

  /// Allocate data objects (all initially on NVM; the runtime applies the
  /// initial-placement optimization afterwards). `chunking` tells the
  /// application how to split its large partitionable arrays.
  virtual void setup(hms::ObjectRegistry& registry,
                     const hms::ChunkingPolicy& chunking) = 0;

  /// Append one iteration's tasks (with groups) to the builder.
  virtual void build_iteration(task::GraphBuilder& builder,
                               std::size_t iteration) = 0;

  /// Numerical check after a *real* execution (Executor with functors).
  /// Model-only workloads may return true unconditionally.
  virtual bool verify(hms::ObjectRegistry& registry) {
    (void)registry;
    return true;
  }
};

}  // namespace tahoe::core
