#include "core/knapsack.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "common/assert.hpp"

namespace tahoe::core {
namespace {

std::uint64_t granules_for(std::uint64_t size, std::uint64_t granule) {
  return (size + granule - 1) / granule;
}

void finalize(KnapsackResult& r, std::span<const KnapsackItem> items) {
  std::sort(r.chosen.begin(), r.chosen.end());
  r.total_value = 0.0;
  r.total_size = 0;
  for (std::size_t i : r.chosen) {
    r.total_value += items[i].value;
    r.total_size += items[i].size;
  }
}

}  // namespace

KnapsackResult solve(std::span<const KnapsackItem> items,
                     std::uint64_t capacity, std::uint32_t grid) {
  TAHOE_REQUIRE(grid >= 2, "grid too coarse");
  KnapsackResult result;
  if (capacity == 0 || items.empty()) return result;

  // Candidate filtering: positive value, fits alone.
  std::vector<std::size_t> cand;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].value > 0.0 && items[i].size <= capacity &&
        items[i].size > 0) {
      cand.push_back(i);
    }
  }
  if (cand.empty()) return result;

  const std::uint64_t granule =
      std::max<std::uint64_t>(1, capacity / grid);
  const auto cap_g = static_cast<std::size_t>(capacity / granule);

  // dp[c] = best value using capacity c granules; keep choice bits per item
  // row for reconstruction.
  std::vector<double> dp(cap_g + 1, 0.0);
  std::vector<std::vector<bool>> take(cand.size(),
                                      std::vector<bool>(cap_g + 1, false));
  for (std::size_t k = 0; k < cand.size(); ++k) {
    const KnapsackItem& it = items[cand[k]];
    const std::uint64_t need = granules_for(it.size, granule);
    if (need > cap_g) continue;
    for (std::size_t c = cap_g + 1; c-- > need;) {
      const double with = dp[c - need] + it.value;
      if (with > dp[c]) {
        dp[c] = with;
        take[k][c] = true;
      }
    }
  }

  // Reconstruct.
  std::size_t c = cap_g;
  for (std::size_t k = cand.size(); k-- > 0;) {
    if (take[k][c]) {
      result.chosen.push_back(cand[k]);
      c -= static_cast<std::size_t>(
          granules_for(items[cand[k]].size, granule));
    }
  }
  finalize(result, items);
  TAHOE_ASSERT(result.total_size <= capacity,
               "knapsack DP violated the capacity constraint");
  return result;
}

KnapsackResult solve_greedy(std::span<const KnapsackItem> items,
                            std::uint64_t capacity) {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].value > 0.0 && items[i].size > 0 &&
        items[i].size <= capacity) {
      order.push_back(i);
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = items[a].value / static_cast<double>(items[a].size);
    const double db = items[b].value / static_cast<double>(items[b].size);
    if (da != db) return da > db;
    return a < b;
  });
  KnapsackResult result;
  std::uint64_t used = 0;
  for (std::size_t i : order) {
    if (used + items[i].size <= capacity) {
      result.chosen.push_back(i);
      used += items[i].size;
    }
  }
  finalize(result, items);
  return result;
}

namespace {

void finalize_multi(MultiTierResult& r, std::span<const MultiTierItem> items,
                    std::size_t num_tiers) {
  r.total_value = 0.0;
  r.tier_sizes.assign(num_tiers, 0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const int t = r.assignment[i];
    if (t < 0) continue;
    r.total_value += items[i].values[static_cast<std::size_t>(t)];
    r.tier_sizes[static_cast<std::size_t>(t)] += items[i].size;
  }
}

}  // namespace

MultiTierResult solve_multi(std::span<const MultiTierItem> items,
                            std::span<const std::uint64_t> capacities,
                            std::size_t state_budget) {
  const std::size_t T = capacities.size();
  TAHOE_REQUIRE(T >= 1, "solve_multi needs at least one constrained tier");
  TAHOE_REQUIRE(state_budget >= 4, "state budget too small");
  for (const MultiTierItem& it : items) {
    TAHOE_REQUIRE(it.values.size() == T,
                  "item values must match the constrained-tier count");
  }
  MultiTierResult result;
  result.assignment.assign(items.size(), -1);
  if (items.empty()) {
    finalize_multi(result, items, T);
    return result;
  }

  // Per-tier grid: split the state budget evenly across dimensions, but
  // never finer than one byte per granule and never coarser than 1 granule.
  const double per_dim =
      std::pow(static_cast<double>(state_budget), 1.0 / static_cast<double>(T));
  const std::uint64_t grid = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(2048, static_cast<std::uint64_t>(per_dim) - 1));
  std::vector<std::uint64_t> granule(T), cap_g(T);
  std::size_t num_states = 1;
  for (std::size_t t = 0; t < T; ++t) {
    granule[t] = std::max<std::uint64_t>(1, capacities[t] / grid);
    cap_g[t] = capacities[t] / granule[t];
    num_states *= static_cast<std::size_t>(cap_g[t] + 1);
  }

  // Flat index strides (tier 0 fastest-varying).
  std::vector<std::size_t> stride(T);
  std::size_t s = 1;
  for (std::size_t t = 0; t < T; ++t) {
    stride[t] = s;
    s *= static_cast<std::size_t>(cap_g[t] + 1);
  }

  // Forward DP over items; dp[state] = best value with per-tier usage
  // within the state's granule budget. choice[k][state] = tier picked for
  // item k at that state (T = capacity tier / skip).
  std::vector<double> dp(num_states, 0.0), next(num_states, 0.0);
  std::vector<std::vector<std::uint8_t>> choice(
      items.size(), std::vector<std::uint8_t>(num_states,
                                              static_cast<std::uint8_t>(T)));
  std::vector<std::uint64_t> coord(T);
  for (std::size_t k = 0; k < items.size(); ++k) {
    const MultiTierItem& it = items[k];
    std::fill(coord.begin(), coord.end(), 0);
    for (std::size_t st = 0; st < num_states; ++st) {
      double best = dp[st];
      std::uint8_t pick = static_cast<std::uint8_t>(T);
      if (it.size > 0) {
        for (std::size_t t = 0; t < T; ++t) {
          if (it.values[t] <= 0.0) continue;
          const std::uint64_t need = granules_for(it.size, granule[t]);
          if (need > coord[t]) continue;
          const double with =
              dp[st - static_cast<std::size_t>(need) * stride[t]] +
              it.values[t];
          if (with > best) {
            best = with;
            pick = static_cast<std::uint8_t>(t);
          }
        }
      }
      next[st] = best;
      choice[k][st] = pick;
      // Advance mixed-radix coordinates.
      for (std::size_t t = 0; t < T; ++t) {
        if (++coord[t] <= cap_g[t]) break;
        coord[t] = 0;
      }
    }
    dp.swap(next);
  }

  // Reconstruct from the full-capacity state.
  std::size_t st = num_states - 1;
  for (std::size_t k = items.size(); k-- > 0;) {
    const std::uint8_t pick = choice[k][st];
    if (pick < T) {
      result.assignment[k] = static_cast<int>(pick);
      const std::uint64_t need = granules_for(items[k].size, granule[pick]);
      st -= static_cast<std::size_t>(need) * stride[pick];
    }
  }
  finalize_multi(result, items, T);
  for (std::size_t t = 0; t < T; ++t) {
    TAHOE_ASSERT(result.tier_sizes[t] <= capacities[t],
                 "multi-tier DP violated a capacity constraint");
  }
  return result;
}

MultiTierResult solve_multi_exact(std::span<const MultiTierItem> items,
                                  std::span<const std::uint64_t> capacities) {
  const std::size_t T = capacities.size();
  TAHOE_REQUIRE(T >= 1, "solve_multi_exact needs a constrained tier");
  double combos = 1.0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    TAHOE_REQUIRE(items[i].values.size() == T,
                  "item values must match the constrained-tier count");
    combos *= static_cast<double>(T + 1);
    TAHOE_REQUIRE(combos <= static_cast<double>(1 << 24),
                  "exact multi-tier solver instance too large");
  }
  MultiTierResult best;
  best.assignment.assign(items.size(), -1);

  std::vector<int> cur(items.size(), -1);
  std::vector<std::uint64_t> used(T, 0);
  double value = 0.0;
  // Depth-first enumeration of all (T+1)^n assignments, pruning branches
  // that overflow a tier capacity.
  const std::function<void(std::size_t)> visit = [&](std::size_t i) {
    if (i == items.size()) {
      if (value > best.total_value) {
        best.assignment = cur;
        best.total_value = value;
      }
      return;
    }
    cur[i] = -1;  // capacity tier: always feasible, value 0
    visit(i + 1);
    for (std::size_t t = 0; t < T; ++t) {
      if (used[t] + items[i].size > capacities[t]) continue;
      cur[i] = static_cast<int>(t);
      used[t] += items[i].size;
      value += items[i].values[t];
      visit(i + 1);
      value -= items[i].values[t];
      used[t] -= items[i].size;
    }
    cur[i] = -1;
  };
  visit(0);
  finalize_multi(best, items, T);
  return best;
}

namespace {

void finalize_tenant(TenantKnapsackResult& r,
                     std::span<const TenantItem> items,
                     std::span<const TenantRow> rows) {
  std::sort(r.chosen.begin(), r.chosen.end());
  r.total_value = 0.0;
  r.total_size = 0;
  r.tenant_sizes.assign(rows.size(), 0);
  for (std::size_t i : r.chosen) {
    const TenantItem& it = items[i];
    r.total_value += it.value * rows[it.tenant].priority;
    r.total_size += it.size;
    r.tenant_sizes[it.tenant] += it.size;
  }
}

}  // namespace

TenantKnapsackResult solve_tenant_rows(std::span<const TenantItem> items,
                                       std::uint64_t capacity,
                                       std::span<const TenantRow> rows,
                                       std::uint32_t grid) {
  TAHOE_REQUIRE(grid >= 2, "grid too coarse");
  TAHOE_REQUIRE(!rows.empty(), "solve_tenant_rows needs tenant rows");
  for (const TenantItem& it : items) {
    TAHOE_REQUIRE(it.tenant < rows.size(), "item tenant out of range");
    TAHOE_REQUIRE(rows[it.tenant].priority > 0.0,
                  "tenant priority must be positive");
  }
  TenantKnapsackResult result;
  result.tenant_sizes.assign(rows.size(), 0);
  if (capacity == 0 || items.empty()) return result;

  const std::uint64_t granule = std::max<std::uint64_t>(1, capacity / grid);
  const auto cap_g = static_cast<std::size_t>(capacity / granule);
  const std::size_t T = rows.size();

  // Stage 1: per-tenant 0/1 DP within min(quota, capacity), on the shared
  // granule so the cross-tenant split composes without rounding drift.
  // Quotas round *down* to whole granules: a plan can only under-use a row.
  std::vector<std::vector<std::size_t>> cand(T);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const TenantItem& it = items[i];
    const std::uint64_t row_cap = std::min(rows[it.tenant].quota, capacity);
    if (it.value > 0.0 && it.size > 0 && it.size <= row_cap) {
      cand[it.tenant].push_back(i);
    }
  }
  std::vector<std::size_t> quota_g(T);
  std::vector<std::vector<double>> dp(T);
  std::vector<std::vector<std::vector<bool>>> take(T);
  for (std::size_t t = 0; t < T; ++t) {
    quota_g[t] = std::min(
        cap_g, static_cast<std::size_t>(std::min(rows[t].quota, capacity) /
                                        granule));
    dp[t].assign(quota_g[t] + 1, 0.0);
    take[t].assign(cand[t].size(),
                   std::vector<bool>(quota_g[t] + 1, false));
    for (std::size_t k = 0; k < cand[t].size(); ++k) {
      const TenantItem& it = items[cand[t][k]];
      const std::uint64_t need = granules_for(it.size, granule);
      if (need > quota_g[t]) continue;
      const double weighted = it.value * rows[t].priority;
      for (std::size_t c = quota_g[t] + 1; c-- > need;) {
        const double with = dp[t][c - need] + weighted;
        if (with > dp[t][c]) {
          dp[t][c] = with;
          take[t][k][c] = true;
        }
      }
    }
  }

  // Stage 2: split the shared capacity across the tenant curves.
  // share[t][C] = granules granted to tenant t in the best split of C
  // granules over tenants 0..t.
  std::vector<double> best(cap_g + 1, 0.0), next(cap_g + 1, 0.0);
  std::vector<std::vector<std::uint32_t>> share(
      T, std::vector<std::uint32_t>(cap_g + 1, 0));
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t c = 0; c <= cap_g; ++c) {
      double b = best[c];
      std::uint32_t pick = 0;
      const std::size_t lim = std::min(c, quota_g[t]);
      for (std::size_t g = 1; g <= lim; ++g) {
        const double with = best[c - g] + dp[t][g];
        if (with > b) {
          b = with;
          pick = static_cast<std::uint32_t>(g);
        }
      }
      next[c] = b;
      share[t][c] = pick;
    }
    best.swap(next);
  }

  // Reconstruct: per-tenant granule grants, then items within each grant.
  std::size_t c = cap_g;
  std::vector<std::size_t> grant(T, 0);
  for (std::size_t t = T; t-- > 0;) {
    grant[t] = share[t][c];
    c -= grant[t];
  }
  for (std::size_t t = 0; t < T; ++t) {
    std::size_t g = grant[t];
    for (std::size_t k = cand[t].size(); k-- > 0;) {
      if (g < take[t][k].size() && take[t][k][g]) {
        result.chosen.push_back(cand[t][k]);
        g -= static_cast<std::size_t>(
            granules_for(items[cand[t][k]].size, granule));
      }
    }
  }
  finalize_tenant(result, items, rows);
  TAHOE_ASSERT(result.total_size <= capacity,
               "tenant knapsack violated the shared capacity");
  for (std::size_t t = 0; t < T; ++t) {
    TAHOE_ASSERT(result.tenant_sizes[t] <= rows[t].quota,
                 "tenant knapsack violated a tenant row");
  }
  return result;
}

TenantKnapsackResult solve_tenant_rows_exact(std::span<const TenantItem> items,
                                             std::uint64_t capacity,
                                             std::span<const TenantRow> rows) {
  TAHOE_REQUIRE(items.size() <= 20, "exact tenant solver limited to 20 items");
  TAHOE_REQUIRE(!rows.empty(), "solve_tenant_rows_exact needs tenant rows");
  TenantKnapsackResult best;
  best.tenant_sizes.assign(rows.size(), 0);
  const std::uint32_t n = static_cast<std::uint32_t>(items.size());
  std::vector<std::uint64_t> used(rows.size());
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::uint64_t size = 0;
    double value = 0.0;
    bool feasible = true;
    std::fill(used.begin(), used.end(), 0);
    for (std::uint32_t i = 0; i < n && feasible; ++i) {
      if (!(mask & (1u << i))) continue;
      const TenantItem& it = items[i];
      size += it.size;
      used[it.tenant] += it.size;
      value += it.value * rows[it.tenant].priority;
      feasible = size <= capacity && used[it.tenant] <= rows[it.tenant].quota;
    }
    if (feasible && value > best.total_value) {
      best.chosen.clear();
      for (std::uint32_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) best.chosen.push_back(i);
      }
      best.total_value = value;
    }
  }
  finalize_tenant(best, items, rows);
  return best;
}

KnapsackResult solve_exact(std::span<const KnapsackItem> items,
                           std::uint64_t capacity) {
  TAHOE_REQUIRE(items.size() <= 24, "exact solver limited to 24 items");
  KnapsackResult best;
  const std::uint32_t n = static_cast<std::uint32_t>(items.size());
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::uint64_t size = 0;
    double value = 0.0;
    bool feasible = true;
    for (std::uint32_t i = 0; i < n && feasible; ++i) {
      if (mask & (1u << i)) {
        size += items[i].size;
        value += items[i].value;
        if (size > capacity) feasible = false;
      }
    }
    if (feasible && value > best.total_value) {
      best.chosen.clear();
      for (std::uint32_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) best.chosen.push_back(i);
      }
      best.total_value = value;
      best.total_size = size;
    }
  }
  finalize(best, items);
  return best;
}

}  // namespace tahoe::core
