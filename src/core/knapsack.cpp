#include "core/knapsack.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/assert.hpp"

namespace tahoe::core {
namespace {

std::uint64_t granules_for(std::uint64_t size, std::uint64_t granule) {
  return (size + granule - 1) / granule;
}

void finalize(KnapsackResult& r, std::span<const KnapsackItem> items) {
  std::sort(r.chosen.begin(), r.chosen.end());
  r.total_value = 0.0;
  r.total_size = 0;
  for (std::size_t i : r.chosen) {
    r.total_value += items[i].value;
    r.total_size += items[i].size;
  }
}

}  // namespace

KnapsackResult solve(std::span<const KnapsackItem> items,
                     std::uint64_t capacity, std::uint32_t grid) {
  TAHOE_REQUIRE(grid >= 2, "grid too coarse");
  KnapsackResult result;
  if (capacity == 0 || items.empty()) return result;

  // Candidate filtering: positive value, fits alone.
  std::vector<std::size_t> cand;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].value > 0.0 && items[i].size <= capacity &&
        items[i].size > 0) {
      cand.push_back(i);
    }
  }
  if (cand.empty()) return result;

  const std::uint64_t granule =
      std::max<std::uint64_t>(1, capacity / grid);
  const auto cap_g = static_cast<std::size_t>(capacity / granule);

  // dp[c] = best value using capacity c granules; keep choice bits per item
  // row for reconstruction.
  std::vector<double> dp(cap_g + 1, 0.0);
  std::vector<std::vector<bool>> take(cand.size(),
                                      std::vector<bool>(cap_g + 1, false));
  for (std::size_t k = 0; k < cand.size(); ++k) {
    const KnapsackItem& it = items[cand[k]];
    const std::uint64_t need = granules_for(it.size, granule);
    if (need > cap_g) continue;
    for (std::size_t c = cap_g + 1; c-- > need;) {
      const double with = dp[c - need] + it.value;
      if (with > dp[c]) {
        dp[c] = with;
        take[k][c] = true;
      }
    }
  }

  // Reconstruct.
  std::size_t c = cap_g;
  for (std::size_t k = cand.size(); k-- > 0;) {
    if (take[k][c]) {
      result.chosen.push_back(cand[k]);
      c -= static_cast<std::size_t>(
          granules_for(items[cand[k]].size, granule));
    }
  }
  finalize(result, items);
  TAHOE_ASSERT(result.total_size <= capacity,
               "knapsack DP violated the capacity constraint");
  return result;
}

KnapsackResult solve_greedy(std::span<const KnapsackItem> items,
                            std::uint64_t capacity) {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].value > 0.0 && items[i].size > 0 &&
        items[i].size <= capacity) {
      order.push_back(i);
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = items[a].value / static_cast<double>(items[a].size);
    const double db = items[b].value / static_cast<double>(items[b].size);
    if (da != db) return da > db;
    return a < b;
  });
  KnapsackResult result;
  std::uint64_t used = 0;
  for (std::size_t i : order) {
    if (used + items[i].size <= capacity) {
      result.chosen.push_back(i);
      used += items[i].size;
    }
  }
  finalize(result, items);
  return result;
}

KnapsackResult solve_exact(std::span<const KnapsackItem> items,
                           std::uint64_t capacity) {
  TAHOE_REQUIRE(items.size() <= 24, "exact solver limited to 24 items");
  KnapsackResult best;
  const std::uint32_t n = static_cast<std::uint32_t>(items.size());
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::uint64_t size = 0;
    double value = 0.0;
    bool feasible = true;
    for (std::uint32_t i = 0; i < n && feasible; ++i) {
      if (mask & (1u << i)) {
        size += items[i].size;
        value += items[i].value;
        if (size > capacity) feasible = false;
      }
    }
    if (feasible && value > best.total_value) {
      best.chosen.clear();
      for (std::uint32_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) best.chosen.push_back(i);
      }
      best.total_value = value;
      best.total_size = size;
    }
  }
  finalize(best, items);
  return best;
}

}  // namespace tahoe::core
