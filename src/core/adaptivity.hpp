// Workload-variation monitor.
//
// After data movement is in place, the runtime keeps watching per-group
// execution times. When a group deviates from the baseline captured at
// decision time by more than the threshold (10 % in the paper), the
// runtime re-activates phase profiling and re-decides placement.
#pragma once

#include <vector>

namespace tahoe::core {

class AdaptiveMonitor {
 public:
  explicit AdaptiveMonitor(double threshold = 0.10) : threshold_(threshold) {}

  /// Capture the expected per-group durations (decision-time state).
  void set_baseline(std::vector<double> group_seconds);

  bool has_baseline() const noexcept { return !baseline_.empty(); }
  double threshold() const noexcept { return threshold_; }

  /// True when the observed iteration deviates "obviously": any group
  /// carrying at least 1 % of the iteration deviates by more than the
  /// threshold, or the iteration total does.
  bool deviates(const std::vector<double>& group_seconds) const;

 private:
  double threshold_;
  std::vector<double> baseline_;
  double baseline_total_ = 0.0;
};

}  // namespace tahoe::core
