#include "core/report.hpp"

#include "trace/json.hpp"

namespace tahoe::core {

double RunReport::steady_iteration_seconds(std::size_t warmup) const {
  // With no post-warmup iterations there is no steady state to report;
  // 0.0 keeps ratios of such runs visibly degenerate instead of silently
  // averaging warmup noise.
  if (iteration_seconds.size() <= warmup) return 0.0;
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = warmup; i < iteration_seconds.size(); ++i) {
    sum += iteration_seconds[i];
    ++n;
  }
  return sum / static_cast<double>(n);
}

void RunReport::write_json(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    const std::vector<std::pair<std::string, std::uint64_t>>& gauges,
    const std::vector<std::pair<std::string, trace::HistogramSnapshot>>&
        histograms) const {
  trace::JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", std::uint64_t{2});
  w.kv("workload", workload);
  w.kv("policy", policy);
  w.kv("strategy", strategy);
  w.kv("compute_seconds", compute_seconds);
  w.kv("overhead_seconds", overhead_seconds);
  w.kv("decision_seconds", decision_seconds);
  w.kv("total_seconds", total_seconds());
  w.kv("steady_iteration_seconds", steady_iteration_seconds());
  w.kv("migrations", migrations);
  w.kv("bytes_moved", bytes_moved);
  w.kv("copy_busy_seconds", copy_busy_seconds);
  w.kv("stall_seconds", stall_seconds);
  w.kv("overlap_fraction", overlap_fraction());
  w.kv("runtime_cost_fraction", runtime_cost_fraction());
  w.kv("reprofiles", static_cast<std::uint64_t>(reprofiles));
  w.kv("failed_no_space", failed_no_space);
  w.kv("migrations_retried", migrations_retried);
  w.kv("migrations_aborted", migrations_aborted);
  w.kv("migrations_cancelled", migrations_cancelled);
  w.kv("plans_degraded", plans_degraded);
  w.kv("faults_injected", faults_injected);
  w.kv("verified", verified);
  w.kv("tasks_executed", tasks_executed);
  w.key("iteration_seconds").begin_array();
  for (const double s : iteration_seconds) w.value(s);
  w.end_array();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) w.kv(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) w.kv(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.kv("count", h.count());
    w.kv("sum", h.sum);
    w.kv("p50", h.p50());
    w.kv("p90", h.p90());
    w.kv("p99", h.p99());
    w.kv("max", h.max);
    w.end_object();
  }
  w.end_object();
  w.key("attribution").begin_array();
  for (const AttributionRow& r : attribution) {
    w.begin_object();
    w.kv("task_type", r.task_type);
    w.kv("object", r.object);
    w.kv("tasks", r.tasks);
    w.kv("dram_loads", r.dram_loads);
    w.kv("dram_stores", r.dram_stores);
    w.kv("nvm_loads", r.nvm_loads);
    w.kv("nvm_stores", r.nvm_stores);
    w.kv("sampled_loads", r.sampled_loads);
    w.kv("sampled_stores", r.sampled_stores);
    w.kv("est_loads", r.est_loads);
    w.kv("est_stores", r.est_stores);
    w.end_object();
  }
  w.end_array();
  w.key("objects").begin_array();
  for (const ObjectMigrationRow& r : objects) {
    w.begin_object();
    w.kv("object", r.object);
    w.kv("promotions", r.promotions);
    w.kv("evictions", r.evictions);
    w.kv("bytes_promoted", r.bytes_promoted);
    w.kv("bytes_evicted", r.bytes_evicted);
    w.kv("copies_hidden", r.copies_hidden);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void RunReport::write_explain_json(std::ostream& os) const {
  trace::JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", std::uint64_t{2});
  w.kv("workload", workload);
  w.kv("policy", policy);
  w.kv("strategy", strategy);
  w.key("plans").begin_array();
  for (const PlanRecord& p : plans) {
    w.begin_object();
    w.kv("iteration", static_cast<std::uint64_t>(p.iteration));
    w.kv("replan_round", static_cast<std::uint64_t>(
                             p.replan_round < 0 ? 0 : p.replan_round));
    w.kv("strategy", p.strategy);
    w.kv("local_gain", p.local_gain);
    w.kv("global_gain", p.global_gain);
    w.kv("predicted_gain", p.predicted_gain);
    w.kv("schedule_copies", static_cast<std::uint64_t>(p.schedule_copies));
    w.key("pinned_nvm").begin_array();
    for (const std::string& name : p.pinned_nvm) w.value(name);
    w.end_array();
    w.key("candidates").begin_array();
    for (const PlanCandidate& c : p.candidates) {
      w.begin_object();
      w.kv("object", c.object);
      w.kv("object_id", c.object_id);
      w.kv("chunk", static_cast<std::uint64_t>(c.chunk));
      w.kv("pass", c.pass);
      w.kv("group", static_cast<std::uint64_t>(c.group));
      w.kv("sensitivity", c.sensitivity);
      w.kv("benefit", c.benefit);
      w.kv("cost", c.cost);
      w.kv("extra_cost", c.extra_cost);
      w.kv("value", c.value);
      w.kv("bytes", c.bytes);
      w.kv("accepted", c.accepted);
      w.kv("reason", c.reason);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace tahoe::core
