#include "core/report.hpp"

namespace tahoe::core {

double RunReport::steady_iteration_seconds(std::size_t warmup) const {
  if (iteration_seconds.empty()) return 0.0;
  const std::size_t skip =
      iteration_seconds.size() > warmup ? warmup : iteration_seconds.size() - 1;
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = skip; i < iteration_seconds.size(); ++i) {
    sum += iteration_seconds[i];
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : iteration_seconds.back();
}

}  // namespace tahoe::core
