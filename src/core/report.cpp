#include "core/report.hpp"

#include "trace/json.hpp"

namespace tahoe::core {

double RunReport::steady_iteration_seconds(std::size_t warmup) const {
  // With no post-warmup iterations there is no steady state to report;
  // 0.0 keeps ratios of such runs visibly degenerate instead of silently
  // averaging warmup noise.
  if (iteration_seconds.size() <= warmup) return 0.0;
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = warmup; i < iteration_seconds.size(); ++i) {
    sum += iteration_seconds[i];
    ++n;
  }
  return sum / static_cast<double>(n);
}

void RunReport::write_json(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) const {
  trace::JsonWriter w(os);
  w.begin_object();
  w.kv("workload", workload);
  w.kv("policy", policy);
  w.kv("strategy", strategy);
  w.kv("compute_seconds", compute_seconds);
  w.kv("overhead_seconds", overhead_seconds);
  w.kv("decision_seconds", decision_seconds);
  w.kv("total_seconds", total_seconds());
  w.kv("steady_iteration_seconds", steady_iteration_seconds());
  w.kv("migrations", migrations);
  w.kv("bytes_moved", bytes_moved);
  w.kv("copy_busy_seconds", copy_busy_seconds);
  w.kv("stall_seconds", stall_seconds);
  w.kv("overlap_fraction", overlap_fraction());
  w.kv("runtime_cost_fraction", runtime_cost_fraction());
  w.kv("reprofiles", static_cast<std::uint64_t>(reprofiles));
  w.kv("failed_no_space", failed_no_space);
  w.kv("migrations_retried", migrations_retried);
  w.kv("migrations_aborted", migrations_aborted);
  w.kv("migrations_cancelled", migrations_cancelled);
  w.kv("plans_degraded", plans_degraded);
  w.kv("faults_injected", faults_injected);
  w.kv("verified", verified);
  w.kv("tasks_executed", tasks_executed);
  w.key("iteration_seconds").begin_array();
  for (const double s : iteration_seconds) w.value(s);
  w.end_array();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) w.kv(name, value);
  w.end_object();
  w.end_object();
}

}  // namespace tahoe::core
