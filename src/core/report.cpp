#include "core/report.hpp"

#include "trace/json.hpp"

namespace tahoe::core {
namespace {

/// Same digest shape as the "histograms" section, reused for the
/// per-tenant latency fields so consumers parse one format.
void write_digest(trace::JsonWriter& w, const char* key,
                  const trace::HistogramSnapshot& h) {
  w.key(key).begin_object();
  w.kv("count", h.count());
  w.kv("sum", h.sum);
  w.kv("p50", h.p50());
  w.kv("p90", h.p90());
  w.kv("p99", h.p99());
  w.kv("max", h.max);
  w.end_object();
}

}  // namespace

double RunReport::steady_iteration_seconds(std::size_t warmup) const {
  // With no post-warmup iterations there is no steady state to report;
  // 0.0 keeps ratios of such runs visibly degenerate instead of silently
  // averaging warmup noise.
  if (iteration_seconds.size() <= warmup) return 0.0;
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = warmup; i < iteration_seconds.size(); ++i) {
    sum += iteration_seconds[i];
    ++n;
  }
  return sum / static_cast<double>(n);
}

void RunReport::write_json(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    const std::vector<std::pair<std::string, std::uint64_t>>& gauges,
    const std::vector<std::pair<std::string, trace::HistogramSnapshot>>&
        histograms) const {
  const bool v3 = multi_tier();
  const bool v4 = serving();
  trace::JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", std::uint64_t{v4 ? 4u : (v3 ? 3u : 2u)});
  w.kv("workload", workload);
  w.kv("policy", policy);
  w.kv("strategy", strategy);
  if (v3) {
    w.key("tiers").begin_array();
    for (const std::string& t : tier_names) w.value(t);
    w.end_array();
  }
  w.kv("compute_seconds", compute_seconds);
  w.kv("overhead_seconds", overhead_seconds);
  w.kv("decision_seconds", decision_seconds);
  w.kv("total_seconds", total_seconds());
  w.kv("steady_iteration_seconds", steady_iteration_seconds());
  w.kv("migrations", migrations);
  w.kv("bytes_moved", bytes_moved);
  w.kv("copy_busy_seconds", copy_busy_seconds);
  w.kv("stall_seconds", stall_seconds);
  w.kv("overlap_fraction", overlap_fraction());
  w.kv("runtime_cost_fraction", runtime_cost_fraction());
  w.kv("reprofiles", static_cast<std::uint64_t>(reprofiles));
  w.kv("failed_no_space", failed_no_space);
  w.kv("migrations_retried", migrations_retried);
  w.kv("migrations_aborted", migrations_aborted);
  w.kv("migrations_cancelled", migrations_cancelled);
  w.kv("plans_degraded", plans_degraded);
  w.kv("faults_injected", faults_injected);
  w.kv("verified", verified);
  w.kv("tasks_executed", tasks_executed);
  if (trace_dropped_events != 0) {
    w.kv("trace_dropped_events", trace_dropped_events);
  }
  w.key("iteration_seconds").begin_array();
  for (const double s : iteration_seconds) w.value(s);
  w.end_array();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) w.kv(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) w.kv(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.kv("count", h.count());
    w.kv("sum", h.sum);
    w.kv("p50", h.p50());
    w.kv("p90", h.p90());
    w.kv("p99", h.p99());
    w.kv("max", h.max);
    w.end_object();
  }
  w.end_object();
  if (v4) {
    w.key("tenants").begin_array();
    for (const TenantReportRow& t : tenants) {
      w.begin_object();
      w.kv("name", t.name);
      w.kv("priority", t.priority);
      w.kv("quota_bytes", t.quota_bytes);
      w.kv("fast_bytes", t.fast_bytes);
      w.kv("total_bytes", t.total_bytes);
      w.kv("requests", t.requests);
      w.kv("dropped", t.dropped);
      write_digest(w, "request_latency", t.request_latency);
      write_digest(w, "queue_wait", t.queue_wait);
      write_digest(w, "service_time", t.service_time);
      w.end_object();
    }
    w.end_array();
  }
  w.key("attribution").begin_array();
  for (const AttributionRow& r : attribution) {
    w.begin_object();
    w.kv("task_type", r.task_type);
    w.kv("object", r.object);
    w.kv("tasks", r.tasks);
    if (v3) {
      w.key("tier_loads").begin_array();
      for (std::size_t t = 0; t < tier_names.size(); ++t) {
        w.value(t < r.tier_loads.size() ? r.tier_loads[t] : 0);
      }
      w.end_array();
      w.key("tier_stores").begin_array();
      for (std::size_t t = 0; t < tier_names.size(); ++t) {
        w.value(t < r.tier_stores.size() ? r.tier_stores[t] : 0);
      }
      w.end_array();
    } else {
      w.kv("dram_loads", r.dram_loads);
      w.kv("dram_stores", r.dram_stores);
      w.kv("nvm_loads", r.nvm_loads);
      w.kv("nvm_stores", r.nvm_stores);
    }
    w.kv("sampled_loads", r.sampled_loads);
    w.kv("sampled_stores", r.sampled_stores);
    w.kv("est_loads", r.est_loads);
    w.kv("est_stores", r.est_stores);
    w.end_object();
  }
  w.end_array();
  w.key("objects").begin_array();
  for (const ObjectMigrationRow& r : objects) {
    w.begin_object();
    w.kv("object", r.object);
    w.kv("promotions", r.promotions);
    w.kv("evictions", r.evictions);
    w.kv("bytes_promoted", r.bytes_promoted);
    w.kv("bytes_evicted", r.bytes_evicted);
    w.kv("copies_hidden", r.copies_hidden);
    if (v3) {
      w.key("flows").begin_array();
      for (const TierFlowRow& f : r.flows) {
        w.begin_object();
        w.kv("src", std::uint64_t{f.src});
        w.kv("dst", std::uint64_t{f.dst});
        w.kv("src_tier", f.src < tier_names.size() ? tier_names[f.src] : "");
        w.kv("dst_tier", f.dst < tier_names.size() ? tier_names[f.dst] : "");
        w.kv("copies", f.copies);
        w.kv("bytes", f.bytes);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void RunReport::write_explain_json(std::ostream& os) const {
  const bool v3 = multi_tier();
  trace::JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", std::uint64_t{v3 ? 3u : 2u});
  w.kv("workload", workload);
  w.kv("policy", policy);
  w.kv("strategy", strategy);
  if (v3) {
    w.key("tiers").begin_array();
    for (const std::string& t : tier_names) w.value(t);
    w.end_array();
  }
  w.key("plans").begin_array();
  for (const PlanRecord& p : plans) {
    w.begin_object();
    w.kv("iteration", static_cast<std::uint64_t>(p.iteration));
    w.kv("replan_round", static_cast<std::uint64_t>(
                             p.replan_round < 0 ? 0 : p.replan_round));
    w.kv("strategy", p.strategy);
    w.kv("local_gain", p.local_gain);
    w.kv("global_gain", p.global_gain);
    w.kv("predicted_gain", p.predicted_gain);
    w.kv("schedule_copies", static_cast<std::uint64_t>(p.schedule_copies));
    w.key("pinned_nvm").begin_array();
    for (const std::string& name : p.pinned_nvm) w.value(name);
    w.end_array();
    w.key("candidates").begin_array();
    for (const PlanCandidate& c : p.candidates) {
      w.begin_object();
      w.kv("object", c.object);
      w.kv("object_id", c.object_id);
      w.kv("chunk", static_cast<std::uint64_t>(c.chunk));
      w.kv("pass", c.pass);
      w.kv("group", static_cast<std::uint64_t>(c.group));
      if (c.tier >= 0) w.kv("tier", static_cast<std::uint64_t>(c.tier));
      w.kv("sensitivity", c.sensitivity);
      w.kv("benefit", c.benefit);
      w.kv("cost", c.cost);
      w.kv("extra_cost", c.extra_cost);
      w.kv("value", c.value);
      w.kv("bytes", c.bytes);
      w.kv("accepted", c.accepted);
      w.kv("reason", c.reason);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace tahoe::core
