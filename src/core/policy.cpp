#include "core/policy.hpp"

#include <algorithm>
#include <set>

#include "common/assert.hpp"

namespace tahoe::core {

std::uint64_t PlanInputs::unit_bytes(hms::ObjectId id,
                                     std::size_t chunk) const {
  const ObjectInfo& info = object(id);
  TAHOE_REQUIRE(chunk < info.chunk_bytes.size(), "chunk out of range");
  return info.chunk_bytes[chunk];
}

const ObjectInfo& PlanInputs::object(hms::ObjectId id) const {
  for (const ObjectInfo& o : objects) {
    if (o.id == id) return o;
  }
  TAHOE_UNREACHABLE("object not in plan inputs");
}

bool PlanInputs::pinned(hms::ObjectId id) const {
  return std::find(pinned_nvm.begin(), pinned_nvm.end(), id) !=
         pinned_nvm.end();
}

std::vector<task::ScheduledCopy> cyclic_preamble(
    const PlanInputs& in,
    const std::vector<std::pair<hms::ObjectId, std::size_t>>& start,
    const std::vector<task::ScheduledCopy>& body) {
  using Unit = std::pair<hms::ObjectId, std::size_t>;
  std::set<Unit> possible;
  for (const auto& [unit, dev] : in.current.entries()) {
    if (dev == memsim::kDram) possible.insert(unit);
  }
  for (const task::ScheduledCopy& c : body) {
    if (c.dst == memsim::kDram) possible.insert(Unit{c.object, c.chunk});
  }
  std::set<Unit> start_set(start.begin(), start.end());

  // Fills trigger at iteration start but are only *needed* when the unit
  // is first referenced — that window is what lets the helper thread hide
  // the one-time enforcement copies behind the leading groups.
  const auto first_reference = [&in](const Unit& u) -> task::GroupId {
    if (in.graph == nullptr) return 0;
    const auto refs = in.graph->groups_referencing(u.first, u.second);
    return refs.empty() ? 0 : refs.front();
  };
  std::vector<task::ScheduledCopy> preamble;
  for (const Unit& u : possible) {
    if (!start_set.contains(u)) {
      preamble.push_back(task::ScheduledCopy{
          u.first, u.second, in.unit_bytes(u.first, u.second), memsim::kNvm,
          0, 0});
    }
  }
  for (const Unit& u : start_set) {
    preamble.push_back(task::ScheduledCopy{
        u.first, u.second, in.unit_bytes(u.first, u.second), memsim::kDram,
        0, first_reference(u)});
  }
  return preamble;
}

}  // namespace tahoe::core
