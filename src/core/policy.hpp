// Placement-policy interface.
//
// A Policy turns what is known after the profiling iterations into a
// *cyclic migration schedule*: the list of ScheduledCopy entries the
// runtime re-submits every iteration of the main loop. Copies whose unit is
// already on the destination tier are free no-ops, so a "static" plan is
// simply a schedule whose copies all become no-ops after the first
// enforcement iteration, while phase-local plans keep moving units within
// every iteration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/profiles.hpp"
#include "core/report.hpp"
#include "hms/placement.hpp"
#include "memsim/machine.hpp"
#include "task/graph.hpp"
#include "task/sim_executor.hpp"

namespace tahoe::core {

struct ObjectInfo {
  hms::ObjectId id = hms::kInvalidObject;
  std::string name;
  std::vector<std::uint64_t> chunk_bytes;
  double static_ref_estimate = 0.0;

  std::uint64_t total_bytes() const noexcept {
    std::uint64_t s = 0;
    for (std::uint64_t b : chunk_bytes) s += b;
    return s;
  }
};

struct PlanInputs {
  const task::TaskGraph* graph = nullptr;     ///< representative iteration
  const memsim::Machine* machine = nullptr;
  const PhaseProfiles* profiles = nullptr;    ///< null for offline policies
  std::vector<ObjectInfo> objects;
  hms::PlacementMap current;                  ///< placement at decision time
  /// Objects the degradation path pinned to NVM: repeated DRAM failures
  /// (reservation vetoes, aborted copies) demoted them, and every policy
  /// must keep them out of its DRAM plan when re-planning.
  std::vector<hms::ObjectId> pinned_nvm;

  std::uint64_t unit_bytes(hms::ObjectId id, std::size_t chunk) const;
  const ObjectInfo& object(hms::ObjectId id) const;
  bool pinned(hms::ObjectId id) const;
};

struct PlanDecision {
  std::vector<task::ScheduledCopy> schedule;  ///< cyclic, per iteration
  std::string strategy;                       ///< e.g. "global", "local"
  double predicted_gain = 0.0;                ///< modeled seconds saved/iter
  double decision_seconds = 0.0;              ///< measured planning cost
  /// Decision provenance: every candidate the policy weighed, with the
  /// Eq. (7) terms and accept/reject verdicts. Policies that do not model
  /// candidates leave it empty. Candidate `object` names are unresolved
  /// (the runtime fills them from ObjectInfo when recording the plan).
  std::vector<PlanCandidate> provenance;
  double local_gain = 0.0;   ///< phase-local alternative's predicted gain
  double global_gain = 0.0;  ///< cross-phase alternative's predicted gain
};

class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;
  /// Whether the runtime must run profiling iterations for this policy.
  virtual bool needs_profiling() const { return false; }
  virtual PlanDecision decide(const PlanInputs& in) = 0;
};

/// Build the schedule preamble that forces DRAM residency to exactly
/// `start` at each iteration boundary: evictions (trigger/needed group 0)
/// for every unit that could be resident but is not in `start` — i.e. the
/// decision-time residents plus every fill target of `body` — followed by
/// fills for `start`. All entries become free no-ops once the system
/// reaches its steady state, but they make cyclic schedules capacity-safe
/// regardless of the residency the previous iteration left behind.
std::vector<task::ScheduledCopy> cyclic_preamble(
    const PlanInputs& in,
    const std::vector<std::pair<hms::ObjectId, std::size_t>>& start,
    const std::vector<task::ScheduledCopy>& body);

}  // namespace tahoe::core
