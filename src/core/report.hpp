// Run reports: everything the evaluation harness prints.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "trace/histogram.hpp"

namespace tahoe::core {

/// One promotion candidate the planner weighed — Eq. (7) inputs plus the
/// verdict. `object_id` is the raw hms::ObjectId (kept as an integer here
/// so the report layer stays dependency-free); the runtime resolves
/// `object` to the allocation name before the record is exported.
struct PlanCandidate {
  std::uint64_t object_id = 0;
  std::string object;        ///< resolved name ("" until the runtime fills it)
  std::size_t chunk = 0;
  std::string pass;          ///< "local" / "global" / "pinned"
  std::size_t group = 0;     ///< phase index (local pass only)
  /// Candidate destination tier on N-tier machines; -1 on two-tier
  /// machines (where "promote to DRAM" is the only choice). Serialized
  /// only when >= 0, keeping two-tier explain exports byte-stable.
  int tier = -1;
  std::string sensitivity;   ///< "bandwidth" / "latency" / "mixed" / ""
  double benefit = 0.0;      ///< BFT (modeled seconds saved)
  double cost = 0.0;         ///< COST (exposed movement seconds)
  double extra_cost = 0.0;   ///< eviction cost to make room
  double value = 0.0;        ///< knapsack value = benefit - cost - extra_cost
  std::uint64_t bytes = 0;   ///< knapsack weight (unit size)
  bool accepted = false;
  std::string reason;  ///< "selected"/"non-positive-weight"/"capacity"/...
};

/// One planning round: every decide() call the runtime made, including the
/// degraded re-plans where reservation failures pinned objects to NVM.
struct PlanRecord {
  std::size_t iteration = 0;    ///< iteration at which the decision fired
  int replan_round = 0;         ///< 0 = first plan, >0 = pinned re-plans
  std::string strategy;         ///< winning strategy of this round
  double local_gain = 0.0;      ///< phase-local plan's predicted gain
  double global_gain = 0.0;     ///< cross-phase plan's predicted gain
  double predicted_gain = 0.0;  ///< gain of the winning plan
  std::size_t schedule_copies = 0;
  std::vector<std::string> pinned_nvm;  ///< degradation pins in effect
  std::vector<PlanCandidate> candidates;
};

/// Per-(task group, object) access attribution, aggregated over the run:
/// what each phase did to each object on each tier, in both raw sampled
/// counts and interval-corrected estimates.
struct AttributionRow {
  std::string task_type;  ///< group name (the task-type granularity)
  std::string object;
  std::uint64_t tasks = 0;
  std::uint64_t dram_loads = 0;   ///< simulated accesses served by tier 0
  std::uint64_t dram_stores = 0;
  std::uint64_t nvm_loads = 0;    ///< simulated accesses served by tier 1
  std::uint64_t nvm_stores = 0;
  std::uint64_t sampled_loads = 0;  ///< raw profiler samples
  std::uint64_t sampled_stores = 0;
  std::uint64_t est_loads = 0;  ///< sampled x interval correction
  std::uint64_t est_stores = 0;
  /// Per-tier served accesses, indexed by TierId; filled (and serialized,
  /// schema v3) only on machines with more than two tiers. Two-tier runs
  /// use the dram_/nvm_ fields above (schema v2).
  std::vector<std::uint64_t> tier_loads;
  std::vector<std::uint64_t> tier_stores;
};

/// One (source tier, destination tier) migration flow of an object.
struct TierFlowRow {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t copies = 0;
  std::uint64_t bytes = 0;
};

/// Per-object migration attribution over the run.
struct ObjectMigrationRow {
  std::string object;
  std::uint64_t promotions = 0;  ///< copies to a faster tier that moved bytes
  std::uint64_t evictions = 0;   ///< copies to a slower tier that moved bytes
  std::uint64_t bytes_promoted = 0;
  std::uint64_t bytes_evicted = 0;
  std::uint64_t copies_hidden = 0;  ///< completed outside any group stall
  /// Per-(src, dst) tier-pair flows, sorted by (src, dst); filled (and
  /// serialized, schema v3) only on machines with more than two tiers.
  std::vector<TierFlowRow> flows;
};

/// Per-tenant serving section of a RunReport (schema v4). Latency and
/// queue-wait digests come from the tenant-labeled request histograms;
/// occupancy is the tenant's fast-tier residency at the end of the run.
struct TenantReportRow {
  std::string name;
  double priority = 1.0;
  std::uint64_t quota_bytes = 0;       ///< effective capacity row (0 = none)
  std::uint64_t fast_bytes = 0;        ///< fast-tier residency (occupancy)
  std::uint64_t total_bytes = 0;       ///< tenant footprint across tiers
  std::uint64_t requests = 0;          ///< completed requests
  std::uint64_t dropped = 0;           ///< requests still queued at shutdown
  trace::HistogramSnapshot request_latency;  ///< arrival -> completion
  trace::HistogramSnapshot queue_wait;       ///< arrival -> service start
  trace::HistogramSnapshot service_time;     ///< service start -> completion
};

struct RunReport {
  std::string workload;
  std::string policy;
  std::string strategy;  ///< "global" / "local" / policy-specific / ""

  /// Device names of the machine's tiers, fastest first. Reports covering
  /// more than two tiers serialize with schema_version 3 (per-tier
  /// attribution and tier-pair migration flows); two-tier (or unset)
  /// reports keep the byte-stable schema_version 2 layout.
  std::vector<std::string> tier_names;

  bool multi_tier() const noexcept { return tier_names.size() > 2; }

  /// Per-tenant serving rows (src/serve/). Non-empty reports serialize
  /// with schema_version 4 and a "tenants" array; empty (the non-serving
  /// case) leaves the v2/v3 layouts byte-identical.
  std::vector<TenantReportRow> tenants;

  bool serving() const noexcept { return !tenants.empty(); }

  std::vector<double> iteration_seconds;  ///< simulated makespan per iter
  double compute_seconds = 0.0;           ///< sum of iteration makespans
  double overhead_seconds = 0.0;          ///< profiling + decision + sync
  double decision_seconds = 0.0;          ///< planning part of the overhead

  std::uint64_t migrations = 0;     ///< copies that actually moved bytes
  std::uint64_t bytes_moved = 0;
  double copy_busy_seconds = 0.0;
  double stall_seconds = 0.0;       ///< exposed (non-overlapped) copy time
  std::size_t reprofiles = 0;       ///< adaptivity-triggered re-decisions

  // Degradation bookkeeping (fault injection and genuine failures alike).
  std::uint64_t failed_no_space = 0;      ///< moves refused: tier full
  std::uint64_t migrations_retried = 0;   ///< retry attempts after aborts
  std::uint64_t migrations_aborted = 0;   ///< requests abandoned after retries
  std::uint64_t migrations_cancelled = 0; ///< requests cancelled pre-copy
  std::uint64_t plans_degraded = 0;       ///< re-plans forced by pinning
  std::uint64_t faults_injected = 0;      ///< injector firings during the run
  bool verified = true;                   ///< numerical check (real runs)

  /// Tasks executed across all iterations (graph size × iterations; on the
  /// real path it is the executor's own tally). Deterministic, unlike the
  /// scheduler's steal/park counters, which are exported through the
  /// counter registry instead.
  std::uint64_t tasks_executed = 0;

  /// Trace events lost to full rings during this run (Tracer::dropped()
  /// delta). Serialized only when nonzero, keeping clean runs' exports
  /// byte-identical to the legacy layout.
  std::uint64_t trace_dropped_events = 0;

  /// Decision provenance: one record per planning round (including
  /// degraded re-plans). Serialized by write_explain_json, not write_json.
  std::vector<PlanRecord> plans;

  /// Per-(task type, object) access attribution and per-object migration
  /// tallies, filled when RuntimeConfig::attribution is on. Sorted by
  /// (task_type, object) / object, so exports are deterministic.
  std::vector<AttributionRow> attribution;
  std::vector<ObjectMigrationRow> objects;

  double total_seconds() const noexcept {
    return compute_seconds + overhead_seconds;
  }

  /// Fraction of data movement hidden behind computation.
  double overlap_fraction() const noexcept {
    if (copy_busy_seconds <= 0.0) return 1.0;
    const double overlapped = copy_busy_seconds - stall_seconds;
    return overlapped > 0.0 ? overlapped / copy_busy_seconds : 0.0;
  }

  /// "Pure runtime cost" of the paper's Table 5: overhead relative to the
  /// total execution time.
  double runtime_cost_fraction() const noexcept {
    const double total = total_seconds();
    return total > 0.0 ? overhead_seconds / total : 0.0;
  }

  /// Mean of the steady-state iterations (skipping the first
  /// `warmup` iterations, default 3: profiling x2 + first enforcement).
  /// Returns 0.0 when there are no post-warmup iterations to average.
  double steady_iteration_seconds(std::size_t warmup = 3) const;

  /// Serialize the report as a single-line JSON object (no trailing
  /// newline) — the machine-readable form benches emit as JSON lines.
  /// Parseable by trace::parse_json. Optional sub-objects: "counters"
  /// (monotonic totals), "gauges" (point-in-time levels — keep these out
  /// of byte-compared exports, they are nondeterministic), "histograms"
  /// (count/percentile digests). The "schema_version" field leads the
  /// object: 2 for two-tier reports (byte-stable legacy layout), 3 when
  /// the report covers more than two tiers ("tiers" list, per-tier
  /// attribution, tier-pair migration flows), 4 when `tenants` is
  /// non-empty (adds the per-tenant serving array). Attribution rows are
  /// emitted under "attribution" and "objects".
  void write_json(
      std::ostream& os,
      const std::vector<std::pair<std::string, std::uint64_t>>& counters = {},
      const std::vector<std::pair<std::string, std::uint64_t>>& gauges = {},
      const std::vector<std::pair<std::string, trace::HistogramSnapshot>>&
          histograms = {}) const;

  /// Serialize the decision provenance (`plans`) as a single JSON object.
  /// Deliberately excludes every wall-clock-measured quantity
  /// (decision_seconds), so two same-seed runs produce byte-identical
  /// output.
  void write_explain_json(std::ostream& os) const;
};

}  // namespace tahoe::core
