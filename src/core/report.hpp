// Run reports: everything the evaluation harness prints.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace tahoe::core {

struct RunReport {
  std::string workload;
  std::string policy;
  std::string strategy;  ///< "global" / "local" / policy-specific / ""

  std::vector<double> iteration_seconds;  ///< simulated makespan per iter
  double compute_seconds = 0.0;           ///< sum of iteration makespans
  double overhead_seconds = 0.0;          ///< profiling + decision + sync
  double decision_seconds = 0.0;          ///< planning part of the overhead

  std::uint64_t migrations = 0;     ///< copies that actually moved bytes
  std::uint64_t bytes_moved = 0;
  double copy_busy_seconds = 0.0;
  double stall_seconds = 0.0;       ///< exposed (non-overlapped) copy time
  std::size_t reprofiles = 0;       ///< adaptivity-triggered re-decisions

  // Degradation bookkeeping (fault injection and genuine failures alike).
  std::uint64_t failed_no_space = 0;      ///< moves refused: tier full
  std::uint64_t migrations_retried = 0;   ///< retry attempts after aborts
  std::uint64_t migrations_aborted = 0;   ///< requests abandoned after retries
  std::uint64_t migrations_cancelled = 0; ///< requests cancelled pre-copy
  std::uint64_t plans_degraded = 0;       ///< re-plans forced by pinning
  std::uint64_t faults_injected = 0;      ///< injector firings during the run
  bool verified = true;                   ///< numerical check (real runs)

  /// Tasks executed across all iterations (graph size × iterations; on the
  /// real path it is the executor's own tally). Deterministic, unlike the
  /// scheduler's steal/park counters, which are exported through the
  /// counter registry instead.
  std::uint64_t tasks_executed = 0;

  double total_seconds() const noexcept {
    return compute_seconds + overhead_seconds;
  }

  /// Fraction of data movement hidden behind computation.
  double overlap_fraction() const noexcept {
    if (copy_busy_seconds <= 0.0) return 1.0;
    const double overlapped = copy_busy_seconds - stall_seconds;
    return overlapped > 0.0 ? overlapped / copy_busy_seconds : 0.0;
  }

  /// "Pure runtime cost" of the paper's Table 5: overhead relative to the
  /// total execution time.
  double runtime_cost_fraction() const noexcept {
    const double total = total_seconds();
    return total > 0.0 ? overhead_seconds / total : 0.0;
  }

  /// Mean of the steady-state iterations (skipping the first
  /// `warmup` iterations, default 3: profiling x2 + first enforcement).
  /// Returns 0.0 when there are no post-warmup iterations to average.
  double steady_iteration_seconds(std::size_t warmup = 3) const;

  /// Serialize the report as a single-line JSON object (no trailing
  /// newline), optionally with a "counters" sub-object — the
  /// machine-readable form benches emit as JSON lines. Parseable by
  /// trace::parse_json.
  void write_json(
      std::ostream& os,
      const std::vector<std::pair<std::string, std::uint64_t>>& counters = {})
      const;
};

}  // namespace tahoe::core
