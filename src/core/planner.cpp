#include "core/planner.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <set>

#include "common/assert.hpp"
#include "core/knapsack.hpp"
#include "hms/space_manager.hpp"

namespace tahoe::core {
namespace {

using Unit = hms::SpaceManager::Unit;

/// Eq. (6) treats a fully-overlapped copy as free, but an in-flight copy
/// still steals memory bandwidth from the computation it hides behind
/// (the fluid simulator charges this for real). The planner surcharges
/// overlapped copy time by this share so that high-frequency phase-local
/// plans only win when their benefit genuinely covers the contention.
constexpr double kOverlapContention = 1.0;

memsim::SampledCounts per_iteration(const memsim::SampledCounts& total,
                                    std::size_t iterations) {
  TAHOE_REQUIRE(iterations > 0, "no profiled iterations");
  memsim::SampledCounts out;
  out.loads = total.loads / iterations;
  out.stores = total.stores / iterations;
  out.samples_with_access = total.samples_with_access / iterations;
  out.total_samples = total.total_samples / iterations;
  return out;
}

/// Earliest group at which a migration of `unit` for group `g` may be
/// triggered: right after the unit's latest reference before g.
task::GroupId trigger_for(const task::TaskGraph& graph, const UnitKey& unit,
                          task::GroupId g) {
  const auto last = graph.last_reference_before(unit.object, unit.chunk, g);
  return last.has_value() ? *last + 1 : 0;
}

/// Overlap window: predicted execution time of the groups between the
/// trigger and the needing group.
double window_seconds(const PhaseProfiles& profiles, task::GroupId trigger,
                      task::GroupId g) {
  double w = 0.0;
  for (task::GroupId j = trigger; j < g; ++j) w += profiles.group_duration(j);
  return w;
}

/// The per-group plan-state transition machinery, shared by both passes of
/// the local search and by the global plan's preamble construction.
class PlanState {
 public:
  PlanState(const PlanInputs& in, std::uint64_t dram_capacity)
      : in_(in), space_(dram_capacity) {}

  /// Seed residency from a list of units.
  void seed(const std::vector<Unit>& residents) {
    for (const Unit& u : residents) {
      const bool ok =
          space_.add(u.first, u.second, in_.unit_bytes(u.first, u.second));
      TAHOE_ASSERT(ok, "decision-time residency exceeds DRAM capacity");
    }
  }

  std::vector<Unit> residents() const {
    std::vector<Unit> out;
    for (const auto& [unit, bytes] : space_.contents()) {
      (void)bytes;
      out.push_back(unit);
    }
    return out;
  }

  std::vector<UnitKey> residents_keys() const {
    std::vector<UnitKey> out;
    for (const auto& [unit, bytes] : space_.contents()) {
      (void)bytes;
      out.push_back(UnitKey{unit.first, unit.second});
    }
    return out;
  }

  /// Make the chosen units of group `g` resident, emitting eviction and
  /// fill copies into `schedule` (when provided). Returns the number of
  /// fills emitted.
  std::size_t apply_group(task::GroupId g, const std::vector<UnitKey>& chosen,
                          std::vector<task::ScheduledCopy>* schedule) {
    // Pin everything this group keeps or gains so victims are picked among
    // the rest.
    std::vector<Unit> pinned;
    pinned.reserve(chosen.size());
    for (const UnitKey& u : chosen) pinned.emplace_back(u.object, u.chunk);

    std::size_t fills = 0;
    std::vector<task::ScheduledCopy> group_fills;
    for (const UnitKey& u : chosen) {
      const Unit unit{u.object, u.chunk};
      const std::uint64_t bytes = in_.unit_bytes(u.object, u.chunk);
      if (space_.resident(unit.first, unit.second)) continue;

      // Evict as needed.
      const std::vector<Unit> victims = space_.pick_victims(bytes, pinned);
      if (!space_.can_fit(bytes) && victims.empty()) {
        continue;  // cannot make room (e.g. everything else pinned)
      }
      for (const Unit& v : victims) {
        space_.remove(v.first, v.second);
        if (schedule != nullptr) {
          const task::GroupId vt =
              trigger_for(*in_.graph, UnitKey{v.first, v.second}, g);
          evict_high_water_ = std::max(evict_high_water_, vt);
          schedule->push_back(task::ScheduledCopy{
              v.first, v.second, in_.unit_bytes(v.first, v.second),
              memsim::kNvm, vt, g});
        }
      }
      const bool ok = space_.add(unit.first, unit.second, bytes);
      TAHOE_ASSERT(ok, "fill does not fit after eviction");
      if (schedule != nullptr) {
        group_fills.push_back(task::ScheduledCopy{
            u.object, u.chunk, bytes, memsim::kDram,
            trigger_for(*in_.graph, u, g), g});
      }
      ++fills;
    }
    if (schedule != nullptr) {
      // Capacity safety: a fill must never land before ANY eviction whose
      // space it may be using. The plan walk reasons about DRAM occupancy
      // sequentially, but copies fire by trigger time — so a far-lookahead
      // fill could otherwise jump ahead of an earlier group's eviction.
      // Clamping to the walk-global eviction high-water mark keeps the
      // firing order consistent with the walk (the helper FIFO then
      // serializes same-trigger copies in schedule order, evictions
      // first).
      for (task::ScheduledCopy& c : group_fills) {
        c.trigger_group = std::max(c.trigger_group, evict_high_water_);
        schedule->push_back(c);
      }
    }
    return fills;
  }

 private:
  const PlanInputs& in_;
  hms::SpaceManager space_;
  /// Latest eviction trigger emitted so far (fills may not fire earlier).
  task::GroupId evict_high_water_ = 0;
};

std::vector<Unit> dram_residents(const PlanInputs& in) {
  std::vector<Unit> out;
  for (const auto& [unit, dev] : in.current.entries()) {
    if (dev == memsim::kDram) out.push_back(unit);
  }
  return out;
}

}  // namespace

std::vector<UnitWeight> group_weights(
    const PlanInputs& in, const PerfModel& model, task::GroupId g,
    const std::vector<UnitKey>& residents_before, bool distinguish_rw) {
  TAHOE_REQUIRE(in.profiles != nullptr, "group_weights needs profiles");
  const PhaseProfiles& prof = *in.profiles;
  TAHOE_REQUIRE(g < prof.groups.size(), "group out of range");
  const double duration = prof.group_duration(g);

  // Hypothetical space state for extra-cost estimation.
  hms::SpaceManager space(in.machine->tier(memsim::kDram).capacity);
  for (const UnitKey& u : residents_before) {
    (void)space.add(u.object, u.chunk, in.unit_bytes(u.object, u.chunk));
  }

  std::vector<UnitWeight> out;
  for (const auto& [unit, counts] : prof.groups[g].units) {
    // Degraded objects are pinned to NVM: never a promotion candidate.
    if (in.pinned(unit.object)) continue;
    const memsim::SampledCounts per_it =
        per_iteration(counts, prof.iterations_profiled);
    if (per_it.accesses() == 0) continue;

    UnitWeight w;
    w.unit = unit;
    w.sensitivity = model.classify(model.bandwidth_estimate(per_it, duration));
    // The constant-factor correction is calibrated on one access pattern;
    // element width and caching make it off by small integer factors for
    // others (the paper's acknowledged limitation). Moving one object can
    // never save more than the phase takes, so clamp the prediction there.
    w.benefit =
        std::min(model.benefit(per_it, duration, distinguish_rw), duration);

    const bool resident =
        std::find(residents_before.begin(), residents_before.end(), unit) !=
        residents_before.end();
    if (!resident) {
      const std::uint64_t bytes = in.unit_bytes(unit.object, unit.chunk);
      const task::GroupId trig = trigger_for(*in.graph, unit, g);
      const double window = window_seconds(prof, trig, g);
      const double copy = model.copy_seconds(bytes, /*to_dram=*/true);
      w.cost = model.movement_cost(bytes, window, /*to_dram=*/true) +
               kOverlapContention * std::min(copy, window);
      if (!space.can_fit(bytes)) {
        for (const Unit& v : space.pick_victims(bytes)) {
          w.extra_cost += model.copy_seconds(
              in.unit_bytes(v.first, v.second), /*to_dram=*/false);
        }
      }
    }
    out.push_back(w);
  }
  return out;
}

TahoePolicy::TahoePolicy(ModelConstants constants, TahoeOptions options)
    : constants_(constants), options_(options) {
  constants_.t1 = options_.t1;
  constants_.t2 = options_.t2;
}

PlanDecision TahoePolicy::decide(const PlanInputs& in) {
  const auto t_begin = std::chrono::steady_clock::now();
  TAHOE_REQUIRE(in.graph != nullptr && in.machine != nullptr &&
                    in.profiles != nullptr,
                "tahoe policy needs graph, machine and profiles");
  if (in.machine->num_tiers() > 2) return decide_multi(in);
  const memsim::Machine& machine = *in.machine;
  const PerfModel model(constants_, machine.tier(memsim::kDram),
                        machine.tier(memsim::kNvm), machine.copy_engine_bw,
                        machine.sample_interval);
  const std::uint64_t capacity = machine.tier(memsim::kDram).capacity;
  const std::size_t num_groups = in.profiles->groups.size();

  // ---------------- phase-local search ----------------
  // Pass 1 establishes the end-of-iteration residency; pass 2 replans from
  // that steady state and emits the cyclic schedule.
  auto run_pass = [&](const std::vector<Unit>& start_residents,
                      std::vector<task::ScheduledCopy>* schedule,
                      double* gain_out,
                      std::vector<PlanCandidate>* prov) -> std::vector<Unit> {
    PlanState state(in, capacity);
    state.seed(start_residents);
    double gain = 0.0;
    for (task::GroupId g = 0; g < num_groups; ++g) {
      const std::vector<UnitKey> residents = state.residents_keys();
      const std::vector<UnitWeight> weights =
          group_weights(in, model, g, residents, options_.distinguish_rw);
      std::vector<KnapsackItem> items;
      items.reserve(weights.size());
      for (const UnitWeight& w : weights) {
        items.push_back(KnapsackItem{
            in.unit_bytes(w.unit.object, w.unit.chunk), w.weight()});
      }
      const KnapsackResult sol = solve(items, capacity);
      std::vector<UnitKey> chosen;
      chosen.reserve(sol.chosen.size());
      for (std::size_t idx : sol.chosen) chosen.push_back(weights[idx].unit);
      if (prov != nullptr) {
        std::size_t next = 0;  // sol.chosen is ascending
        for (std::size_t i = 0; i < weights.size(); ++i) {
          const UnitWeight& uw = weights[i];
          const bool accepted =
              next < sol.chosen.size() && sol.chosen[next] == i;
          if (accepted) ++next;
          PlanCandidate c;
          c.object_id = static_cast<std::uint64_t>(uw.unit.object);
          c.chunk = uw.unit.chunk;
          c.pass = "local";
          c.group = g;
          c.sensitivity = to_string(uw.sensitivity);
          c.benefit = uw.benefit;
          c.cost = uw.cost;
          c.extra_cost = uw.extra_cost;
          c.value = uw.weight();
          c.bytes = items[i].size;
          c.accepted = accepted;
          c.reason = accepted ? "selected"
                     : uw.weight() <= 0.0 ? "non-positive-weight"
                                          : "capacity";
          prov->push_back(std::move(c));
        }
      }
      gain += sol.total_value;
      state.apply_group(g, chosen, schedule);
    }
    if (gain_out != nullptr) *gain_out = gain;
    return state.residents();
  };

  const std::vector<Unit> current = dram_residents(in);
  // Pass 1: establish an end-of-iteration residency from the decision-time
  // state. Pass 2 replans from there and emits the cyclic body. The
  // preamble then pins the iteration-start residency to pass 2's starting
  // state, making the cycle capacity-safe by construction.
  const std::vector<Unit> steady_start =
      run_pass(current, nullptr, nullptr, nullptr);

  std::vector<task::ScheduledCopy> local_body;
  double local_gain = 0.0;
  std::vector<PlanCandidate> provenance;
  run_pass(steady_start, &local_body, &local_gain, &provenance);

  std::vector<task::ScheduledCopy> local_schedule =
      cyclic_preamble(in, steady_start, local_body);
  local_schedule.insert(local_schedule.end(), local_body.begin(),
                        local_body.end());

  // ---------------- cross-phase global search ----------------
  // Aggregate each unit's benefit over all groups; one knapsack; no
  // movement within the iteration (cost is one-time and amortizes away).
  std::map<UnitKey, double> total_benefit;
  // Dominant (max single-group benefit) sensitivity per unit, recorded in
  // the provenance so the explain export can show why a unit aggregated
  // the way it did.
  std::map<UnitKey, std::pair<double, Sensitivity>> dominant;
  std::vector<std::vector<UnitWeight>> per_group_weights(num_groups);
  for (task::GroupId g = 0; g < num_groups; ++g) {
    per_group_weights[g] =
        group_weights(in, model, g, {}, options_.distinguish_rw);
    for (const UnitWeight& w : per_group_weights[g]) {
      total_benefit[w.unit] += w.benefit;
      const auto [it, inserted] =
          dominant.try_emplace(w.unit, w.benefit, w.sensitivity);
      if (!inserted && w.benefit > it->second.first) {
        it->second = {w.benefit, w.sensitivity};
      }
    }
  }
  std::vector<UnitKey> global_units;
  std::vector<KnapsackItem> global_items;
  for (const auto& [unit, benefit] : total_benefit) {
    global_units.push_back(unit);
    global_items.push_back(
        KnapsackItem{in.unit_bytes(unit.object, unit.chunk), benefit});
  }
  const KnapsackResult global_sol = solve(global_items, capacity);
  const double global_gain = global_sol.total_value;
  {
    std::size_t next = 0;  // global_sol.chosen is ascending
    for (std::size_t i = 0; i < global_units.size(); ++i) {
      const bool accepted =
          next < global_sol.chosen.size() && global_sol.chosen[next] == i;
      if (accepted) ++next;
      PlanCandidate c;
      c.object_id = static_cast<std::uint64_t>(global_units[i].object);
      c.chunk = global_units[i].chunk;
      c.pass = "global";
      c.sensitivity = to_string(dominant.at(global_units[i]).second);
      c.benefit = global_items[i].value;
      c.value = global_items[i].value;
      c.bytes = global_items[i].size;
      c.accepted = accepted;
      c.reason = accepted ? "selected"
                 : global_items[i].value <= 0.0 ? "non-positive-weight"
                                                : "capacity";
      provenance.push_back(std::move(c));
    }
  }
  // Degradation pins are part of the story: they explain why an object
  // never even appeared as a candidate.
  for (const hms::ObjectId id : in.pinned_nvm) {
    PlanCandidate c;
    c.object_id = static_cast<std::uint64_t>(id);
    c.pass = "pinned";
    c.accepted = false;
    c.reason = "pinned-nvm";
    provenance.push_back(std::move(c));
  }

  std::vector<Unit> global_target;
  for (std::size_t idx : global_sol.chosen) {
    global_target.emplace_back(global_units[idx].object,
                               global_units[idx].chunk);
  }
  std::vector<task::ScheduledCopy> global_schedule =
      cyclic_preamble(in, global_target, {});

  // ---------------- choose ----------------
  PlanDecision decision;
  bool use_global = global_gain >= local_gain;
  if (options_.strategy == TahoeOptions::Strategy::GlobalOnly) {
    use_global = true;
  } else if (options_.strategy == TahoeOptions::Strategy::LocalOnly) {
    use_global = false;
  }
  if (use_global) {
    decision.schedule = std::move(global_schedule);
    decision.strategy = "global";
    decision.predicted_gain = global_gain;
  } else {
    decision.schedule = std::move(local_schedule);
    decision.strategy = "local";
    decision.predicted_gain = local_gain;
  }
  decision.provenance = std::move(provenance);
  decision.local_gain = local_gain;
  decision.global_gain = global_gain;
  if (!options_.proactive) {
    // Ablation: no lookahead — copies fire only when needed.
    for (task::ScheduledCopy& c : decision.schedule) {
      c.trigger_group = c.needed_group;
    }
  }
  decision.decision_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
          .count();
  return decision;
}

// ---------------------------------------------------------------------------
// N-tier planning path (more than two tiers).
// ---------------------------------------------------------------------------

namespace {

/// Plan-state machinery for N-tier machines: one SpaceManager per
/// *constrained* tier (every tier except the capacity tier) plus the
/// unit -> tier residency map. Evictions always demote to the capacity
/// tier; moves between constrained tiers free the source directly.
class MultiPlanState {
 public:
  MultiPlanState(const PlanInputs& in,
                 const std::vector<std::uint64_t>& capacities,
                 memsim::TierId cap_tier)
      : in_(in), cap_tier_(cap_tier) {
    spaces_.reserve(capacities.size());
    for (const std::uint64_t c : capacities) spaces_.emplace_back(c);
  }

  void seed(const std::map<Unit, memsim::TierId>& residents) {
    for (const auto& [u, t] : residents) {
      const bool ok =
          spaces_[t].add(u.first, u.second, in_.unit_bytes(u.first, u.second));
      TAHOE_ASSERT(ok, "decision-time residency exceeds a tier capacity");
      tier_of_[u] = t;
    }
  }

  const std::map<Unit, memsim::TierId>& residents() const noexcept {
    return tier_of_;
  }

  std::optional<memsim::TierId> tier_of(const Unit& u) const {
    const auto it = tier_of_.find(u);
    if (it == tier_of_.end()) return std::nullopt;
    return it->second;
  }

  /// Victims a fill of `bytes` on tier `t` would evict right now (what-if
  /// query for extra-cost estimation; state is not mutated).
  std::vector<Unit> hypothetical_victims(memsim::TierId t,
                                         std::uint64_t bytes) const {
    if (spaces_[t].can_fit(bytes)) return {};
    return spaces_[t].pick_victims(bytes);
  }

  /// Make the chosen (unit, tier) assignments of group `g` resident,
  /// emitting evictions (to the capacity tier) and fills into `schedule`
  /// when provided. Mirrors PlanState::apply_group, including the
  /// eviction-high-water clamp that keeps fills from firing before the
  /// evictions whose space they use.
  void apply_group(
      task::GroupId g,
      const std::vector<std::pair<UnitKey, memsim::TierId>>& chosen,
      std::vector<task::ScheduledCopy>* schedule) {
    std::vector<std::vector<Unit>> pinned(spaces_.size());
    for (const auto& [u, t] : chosen) pinned[t].emplace_back(u.object, u.chunk);

    std::vector<task::ScheduledCopy> group_fills;
    for (const auto& [uk, t] : chosen) {
      const Unit unit{uk.object, uk.chunk};
      const std::uint64_t bytes = in_.unit_bytes(uk.object, uk.chunk);
      const std::optional<memsim::TierId> cur = tier_of(unit);
      if (cur.has_value() && *cur == t) continue;
      const bool is_move = cur.has_value();
      if (is_move) {
        // Moving between constrained tiers frees the source directly.
        spaces_[*cur].remove(unit.first, unit.second);
        tier_of_.erase(unit);
      }
      const std::vector<Unit> victims = spaces_[t].pick_victims(bytes, pinned[t]);
      if (!spaces_[t].can_fit(bytes) && victims.empty()) {
        continue;  // cannot make room (e.g. everything else pinned)
      }
      for (const Unit& v : victims) {
        spaces_[t].remove(v.first, v.second);
        tier_of_.erase(v);
        if (schedule != nullptr) {
          const task::GroupId vt =
              trigger_for(*in_.graph, UnitKey{v.first, v.second}, g);
          evict_high_water_ = std::max(evict_high_water_, vt);
          schedule->push_back(task::ScheduledCopy{
              v.first, v.second, in_.unit_bytes(v.first, v.second), cap_tier_,
              vt, g});
        }
      }
      const bool ok = spaces_[t].add(unit.first, unit.second, bytes);
      TAHOE_ASSERT(ok, "fill does not fit after eviction");
      tier_of_[unit] = t;
      if (schedule != nullptr) {
        task::ScheduledCopy fill{
            uk.object, uk.chunk, bytes, t, trigger_for(*in_.graph, uk, g), g};
        if (is_move) {
          // The source tier's space frees only when this copy fires, so
          // later fills must be ordered after it exactly like evictions;
          // push it now (evictions and moves precede plain fills at equal
          // triggers) and raise the high-water mark to its trigger.
          fill.trigger_group = std::max(fill.trigger_group, evict_high_water_);
          evict_high_water_ = fill.trigger_group;
          schedule->push_back(fill);
        } else {
          group_fills.push_back(fill);
        }
      }
    }
    if (schedule != nullptr) {
      for (task::ScheduledCopy& c : group_fills) {
        c.trigger_group = std::max(c.trigger_group, evict_high_water_);
        schedule->push_back(c);
      }
    }
  }

 private:
  const PlanInputs& in_;
  memsim::TierId cap_tier_;
  std::vector<hms::SpaceManager> spaces_;
  std::map<Unit, memsim::TierId> tier_of_;
  task::GroupId evict_high_water_ = 0;
};

/// Eq. (7) terms of one unit for every constrained tier.
struct MultiUnitWeight {
  UnitKey unit;
  Sensitivity sensitivity = Sensitivity::Mixed;
  std::vector<double> benefit;     ///< per constrained tier
  std::vector<double> cost;
  std::vector<double> extra_cost;
  double weight(std::size_t t) const noexcept {
    return benefit[t] - cost[t] - extra_cost[t];
  }
};

std::vector<MultiUnitWeight> multi_group_weights(
    const PlanInputs& in, const PerfModel& model, task::GroupId g,
    const MultiPlanState& state, memsim::TierId cap_tier,
    bool distinguish_rw) {
  const PhaseProfiles& prof = *in.profiles;
  TAHOE_REQUIRE(g < prof.groups.size(), "group out of range");
  const double duration = prof.group_duration(g);
  const std::size_t T = model.num_tiers() - 1;

  std::vector<MultiUnitWeight> out;
  for (const auto& [unit, counts] : prof.groups[g].units) {
    if (in.pinned(unit.object)) continue;
    const memsim::SampledCounts per_it =
        per_iteration(counts, prof.iterations_profiled);
    if (per_it.accesses() == 0) continue;

    MultiUnitWeight w;
    w.unit = unit;
    w.sensitivity = model.classify(model.bandwidth_estimate(per_it, duration));
    w.benefit.assign(T, 0.0);
    w.cost.assign(T, 0.0);
    w.extra_cost.assign(T, 0.0);

    const Unit u{unit.object, unit.chunk};
    const std::optional<memsim::TierId> cur = state.tier_of(u);
    const memsim::TierId src = cur.value_or(cap_tier);
    const std::uint64_t bytes = in.unit_bytes(unit.object, unit.chunk);
    for (std::size_t t = 0; t < T; ++t) {
      const memsim::TierId tid = static_cast<memsim::TierId>(t);
      // Benefit relative to the capacity-tier baseline, clamped to the
      // phase duration as in the two-tier path.
      w.benefit[t] = std::min(
          model.benefit_pair(per_it, duration, distinguish_rw, cap_tier, tid),
          duration);
      if (cur.has_value() && *cur == tid) continue;  // resident: free
      const task::GroupId trig = trigger_for(*in.graph, unit, g);
      const double window = window_seconds(prof, trig, g);
      const double copy = model.copy_seconds_pair(bytes, src, tid);
      w.cost[t] = model.movement_cost_pair(bytes, window, src, tid) +
                  kOverlapContention * std::min(copy, window);
      for (const Unit& v : state.hypothetical_victims(tid, bytes)) {
        w.extra_cost[t] += model.copy_seconds_pair(
            in.unit_bytes(v.first, v.second), tid, cap_tier);
      }
    }
    out.push_back(std::move(w));
  }
  return out;
}

/// cyclic_preamble generalized to tier-valued start residencies: evict
/// every possibly-resident unit that the start state does not claim, then
/// fill each start unit onto its tier.
std::vector<task::ScheduledCopy> cyclic_preamble_multi(
    const PlanInputs& in, const std::map<Unit, memsim::TierId>& start,
    const std::vector<task::ScheduledCopy>& body, memsim::TierId cap_tier) {
  std::set<Unit> possible;
  for (const auto& [unit, dev] : in.current.entries()) {
    if (dev != cap_tier) possible.insert(unit);
  }
  for (const task::ScheduledCopy& c : body) {
    if (c.dst != cap_tier) possible.insert(Unit{c.object, c.chunk});
  }
  const auto first_reference = [&in](const Unit& u) -> task::GroupId {
    if (in.graph == nullptr) return 0;
    const auto refs = in.graph->groups_referencing(u.first, u.second);
    return refs.empty() ? 0 : refs.front();
  };
  std::map<Unit, memsim::TierId> current_tier;
  for (const auto& [unit, dev] : in.current.entries()) {
    if (dev != cap_tier) current_tier[unit] = dev;
  }
  std::vector<task::ScheduledCopy> preamble;
  for (const Unit& u : possible) {
    if (!start.contains(u)) {
      preamble.push_back(task::ScheduledCopy{
          u.first, u.second, in.unit_bytes(u.first, u.second), cap_tier, 0,
          0});
    }
  }
  for (const auto& [u, t] : start) {
    // A start unit sitting on the wrong constrained tier must vacate it
    // before any same-trigger fill can count on that space: demote it
    // with the evictions (same-trigger copies run in schedule order), then
    // fill it onto its tier like everything else.
    const auto cur = current_tier.find(u);
    if (cur != current_tier.end() && cur->second != t) {
      preamble.push_back(task::ScheduledCopy{
          u.first, u.second, in.unit_bytes(u.first, u.second), cap_tier, 0,
          0});
    }
  }
  for (const auto& [u, t] : start) {
    preamble.push_back(task::ScheduledCopy{
        u.first, u.second, in.unit_bytes(u.first, u.second), t, 0,
        first_reference(u)});
  }
  return preamble;
}

}  // namespace

PlanDecision TahoePolicy::decide_multi(const PlanInputs& in) {
  const auto t_begin = std::chrono::steady_clock::now();
  const memsim::Machine& machine = *in.machine;
  const PerfModel model(constants_, machine);
  const memsim::TierId cap_tier = machine.capacity_tier();
  const std::size_t T = machine.num_tiers() - 1;  // constrained tiers
  std::vector<std::uint64_t> capacities(T);
  for (std::size_t t = 0; t < T; ++t) {
    capacities[t] = machine.tier(static_cast<memsim::TierId>(t)).capacity;
  }
  const std::size_t num_groups = in.profiles->groups.size();

  // ---------------- phase-local search ----------------
  auto run_pass = [&](const std::map<Unit, memsim::TierId>& start_residents,
                      std::vector<task::ScheduledCopy>* schedule,
                      double* gain_out, std::vector<PlanCandidate>* prov)
      -> std::map<Unit, memsim::TierId> {
    MultiPlanState state(in, capacities, cap_tier);
    state.seed(start_residents);
    double gain = 0.0;
    for (task::GroupId g = 0; g < num_groups; ++g) {
      const std::vector<MultiUnitWeight> weights = multi_group_weights(
          in, model, g, state, cap_tier, options_.distinguish_rw);
      std::vector<MultiTierItem> items;
      items.reserve(weights.size());
      for (const MultiUnitWeight& w : weights) {
        MultiTierItem item;
        item.size = in.unit_bytes(w.unit.object, w.unit.chunk);
        item.values.resize(T);
        for (std::size_t t = 0; t < T; ++t) item.values[t] = w.weight(t);
        items.push_back(std::move(item));
      }
      const MultiTierResult sol = solve_multi(items, capacities);
      std::vector<std::pair<UnitKey, memsim::TierId>> chosen;
      for (std::size_t i = 0; i < weights.size(); ++i) {
        if (sol.assignment[i] >= 0) {
          chosen.emplace_back(weights[i].unit,
                              static_cast<memsim::TierId>(sol.assignment[i]));
        }
      }
      if (prov != nullptr) {
        for (std::size_t i = 0; i < weights.size(); ++i) {
          for (std::size_t t = 0; t < T; ++t) {
            const MultiUnitWeight& uw = weights[i];
            const bool accepted = sol.assignment[i] == static_cast<int>(t);
            PlanCandidate c;
            c.object_id = static_cast<std::uint64_t>(uw.unit.object);
            c.chunk = uw.unit.chunk;
            c.pass = "local";
            c.group = g;
            c.tier = static_cast<int>(t);
            c.sensitivity = to_string(uw.sensitivity);
            c.benefit = uw.benefit[t];
            c.cost = uw.cost[t];
            c.extra_cost = uw.extra_cost[t];
            c.value = uw.weight(t);
            c.bytes = items[i].size;
            c.accepted = accepted;
            c.reason = accepted                ? "selected"
                       : uw.weight(t) <= 0.0   ? "non-positive-weight"
                       : sol.assignment[i] >= 0 ? "other-tier"
                                                : "capacity";
            prov->push_back(std::move(c));
          }
        }
      }
      gain += sol.total_value;
      state.apply_group(g, chosen, schedule);
    }
    if (gain_out != nullptr) *gain_out = gain;
    return state.residents();
  };

  std::map<Unit, memsim::TierId> current;
  for (const auto& [unit, dev] : in.current.entries()) {
    if (dev != cap_tier) current[unit] = dev;
  }
  std::map<Unit, memsim::TierId> steady_start =
      run_pass(current, nullptr, nullptr, nullptr);
  // The body repeats every iteration, so it must return to its own start
  // residency. With more than one constrained tier the per-group MCKP can
  // take a few rounds to settle (a unit parked on tier 1 this round may be
  // re-chosen for tier 2 next round); iterate toward the cyclic fixed
  // point.
  for (int i = 0; i < 4; ++i) {
    std::map<Unit, memsim::TierId> next =
        run_pass(steady_start, nullptr, nullptr, nullptr);
    if (next == steady_start) break;
    steady_start = std::move(next);
  }

  std::vector<task::ScheduledCopy> local_body;
  double local_gain = 0.0;
  std::vector<PlanCandidate> provenance;
  const std::map<Unit, memsim::TierId> body_end =
      run_pass(steady_start, &local_body, &local_gain, &provenance);

  // No fixed point (the pass orbits a longer cycle): splice explicit
  // restore copies into the last group — evictions first, then fills, so
  // same-trigger schedule order keeps every tier within capacity — turning
  // the body into an exact cycle over steady_start.
  if (body_end != steady_start && num_groups > 0) {
    const task::GroupId last = static_cast<task::GroupId>(num_groups - 1);
    for (const auto& [u, t] : body_end) {
      const auto it = steady_start.find(u);
      if (it == steady_start.end() || it->second != t) {
        local_body.push_back(task::ScheduledCopy{
            u.first, u.second, in.unit_bytes(u.first, u.second), cap_tier,
            last, last});
      }
    }
    for (const auto& [u, t] : steady_start) {
      const auto it = body_end.find(u);
      if (it == body_end.end() || it->second != t) {
        local_body.push_back(task::ScheduledCopy{
            u.first, u.second, in.unit_bytes(u.first, u.second), t, last,
            last});
      }
    }
  }

  std::vector<task::ScheduledCopy> local_schedule =
      cyclic_preamble_multi(in, steady_start, local_body, cap_tier);
  local_schedule.insert(local_schedule.end(), local_body.begin(),
                        local_body.end());

  // ---------------- cross-phase global search ----------------
  // Aggregate each unit's per-tier benefit over all groups; one MCKP; no
  // movement within the iteration.
  std::map<UnitKey, std::vector<double>> total_benefit;
  std::map<UnitKey, std::pair<double, Sensitivity>> dominant;
  for (task::GroupId g = 0; g < num_groups; ++g) {
    const MultiPlanState empty_state(in, capacities, cap_tier);
    const std::vector<MultiUnitWeight> weights = multi_group_weights(
        in, model, g, empty_state, cap_tier, options_.distinguish_rw);
    for (const MultiUnitWeight& w : weights) {
      auto& acc = total_benefit[w.unit];
      if (acc.empty()) acc.assign(T, 0.0);
      double best_b = 0.0;
      for (std::size_t t = 0; t < T; ++t) {
        acc[t] += w.benefit[t];
        best_b = std::max(best_b, w.benefit[t]);
      }
      const auto [it, inserted] =
          dominant.try_emplace(w.unit, best_b, w.sensitivity);
      if (!inserted && best_b > it->second.first) {
        it->second = {best_b, w.sensitivity};
      }
    }
  }
  std::vector<UnitKey> global_units;
  std::vector<MultiTierItem> global_items;
  for (const auto& [unit, benefits] : total_benefit) {
    global_units.push_back(unit);
    MultiTierItem item;
    item.size = in.unit_bytes(unit.object, unit.chunk);
    item.values = benefits;
    global_items.push_back(std::move(item));
  }
  const MultiTierResult global_sol = solve_multi(global_items, capacities);
  const double global_gain = global_sol.total_value;
  for (std::size_t i = 0; i < global_units.size(); ++i) {
    for (std::size_t t = 0; t < T; ++t) {
      const bool accepted = global_sol.assignment[i] == static_cast<int>(t);
      PlanCandidate c;
      c.object_id = static_cast<std::uint64_t>(global_units[i].object);
      c.chunk = global_units[i].chunk;
      c.pass = "global";
      c.tier = static_cast<int>(t);
      c.sensitivity = to_string(dominant.at(global_units[i]).second);
      c.benefit = global_items[i].values[t];
      c.value = global_items[i].values[t];
      c.bytes = global_items[i].size;
      c.accepted = accepted;
      c.reason = accepted                           ? "selected"
                 : global_items[i].values[t] <= 0.0 ? "non-positive-weight"
                 : global_sol.assignment[i] >= 0    ? "other-tier"
                                                    : "capacity";
      provenance.push_back(std::move(c));
    }
  }
  for (const hms::ObjectId id : in.pinned_nvm) {
    PlanCandidate c;
    c.object_id = static_cast<std::uint64_t>(id);
    c.pass = "pinned";
    c.accepted = false;
    c.reason = "pinned-nvm";
    provenance.push_back(std::move(c));
  }

  std::map<Unit, memsim::TierId> global_target;
  for (std::size_t i = 0; i < global_units.size(); ++i) {
    if (global_sol.assignment[i] >= 0) {
      global_target[Unit{global_units[i].object, global_units[i].chunk}] =
          static_cast<memsim::TierId>(global_sol.assignment[i]);
    }
  }
  std::vector<task::ScheduledCopy> global_schedule =
      cyclic_preamble_multi(in, global_target, {}, cap_tier);

  // ---------------- choose ----------------
  PlanDecision decision;
  bool use_global = global_gain >= local_gain;
  if (options_.strategy == TahoeOptions::Strategy::GlobalOnly) {
    use_global = true;
  } else if (options_.strategy == TahoeOptions::Strategy::LocalOnly) {
    use_global = false;
  }
  if (use_global) {
    decision.schedule = std::move(global_schedule);
    decision.strategy = "global";
    decision.predicted_gain = global_gain;
  } else {
    decision.schedule = std::move(local_schedule);
    decision.strategy = "local";
    decision.predicted_gain = local_gain;
  }
  decision.provenance = std::move(provenance);
  decision.local_gain = local_gain;
  decision.global_gain = global_gain;
  if (!options_.proactive) {
    for (task::ScheduledCopy& c : decision.schedule) {
      c.trigger_group = c.needed_group;
    }
  }
  decision.decision_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
          .count();
  return decision;
}

std::vector<std::uint64_t> derive_tenant_quotas(
    std::uint64_t fast_capacity, const std::vector<double>& priorities) {
  double sum = 0.0;
  for (double p : priorities) {
    TAHOE_REQUIRE(p > 0.0, "tenant priority must be positive");
    sum += p;
  }
  std::vector<std::uint64_t> quotas(priorities.size(), 0);
  if (sum <= 0.0) return quotas;
  for (std::size_t t = 0; t < priorities.size(); ++t) {
    quotas[t] = static_cast<std::uint64_t>(
        static_cast<double>(fast_capacity) * (priorities[t] / sum));
  }
  return quotas;
}

TenantPlacementPlan plan_tenants(const std::vector<TenantDemand>& tenants,
                                 std::uint64_t fast_capacity,
                                 bool enforce_quotas) {
  TenantPlacementPlan plan;
  plan.promoted.resize(tenants.size());
  plan.quota_bytes.resize(tenants.size(), 0);
  plan.planned_bytes.resize(tenants.size(), 0);

  // Flatten every tenant's candidates into one item span, remembering the
  // (tenant, candidate) origin of each item.
  std::vector<TenantItem> items;
  std::vector<std::pair<std::size_t, std::size_t>> origin;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    for (std::size_t c = 0; c < tenants[t].candidates.size(); ++c) {
      const TenantUnitCandidate& cand = tenants[t].candidates[c];
      items.push_back({cand.bytes, cand.value, static_cast<std::uint32_t>(t)});
      origin.emplace_back(t, c);
    }
  }

  if (enforce_quotas) {
    std::vector<double> priorities;
    priorities.reserve(tenants.size());
    for (const TenantDemand& t : tenants) priorities.push_back(t.priority);
    const std::vector<std::uint64_t> derived =
        derive_tenant_quotas(fast_capacity, priorities);
    std::vector<TenantRow> rows(tenants.size());
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      rows[t].quota =
          tenants[t].quota_bytes > 0 ? tenants[t].quota_bytes : derived[t];
      rows[t].priority = tenants[t].priority;
      plan.quota_bytes[t] = rows[t].quota;
    }
    const TenantKnapsackResult sol =
        solve_tenant_rows(items, fast_capacity, rows);
    for (std::size_t idx : sol.chosen) {
      const auto [t, c] = origin[idx];
      plan.promoted[t].push_back(tenants[t].candidates[c].unit);
      plan.planned_bytes[t] += tenants[t].candidates[c].bytes;
    }
    plan.total_value = sol.total_value;
    return plan;
  }

  // Quota-free baseline: one shared knapsack, blind to tenants and
  // priorities. quota_bytes stays 0 (no rows in effect).
  std::vector<KnapsackItem> flat(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    flat[i] = {items[i].size, items[i].value};
  }
  const KnapsackResult sol = solve(flat, fast_capacity);
  for (std::size_t idx : sol.chosen) {
    const auto [t, c] = origin[idx];
    plan.promoted[t].push_back(tenants[t].candidates[c].unit);
    plan.planned_bytes[t] += tenants[t].candidates[c].bytes;
  }
  plan.total_value = sol.total_value;
  return plan;
}

}  // namespace tahoe::core
