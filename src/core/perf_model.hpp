// Lightweight performance models (Eqs. (1)–(6) of the paper line).
//
// Everything here consumes only (a) sampled counter data, (b) device
// datasheet numbers, and (c) two constant factors CF_bw / CF_lat measured
// once per machine by offline calibration (calibration.hpp). The models
// deliberately ignore caching and overlap effects — the constant factors
// are the paper's mechanism for absorbing that inaccuracy cheaply.
#pragma once

#include <cstdint>

#include "memsim/device.hpp"
#include "memsim/sampler.hpp"

namespace tahoe::core {

struct ModelConstants {
  double cf_bw = 1.0;       ///< bandwidth-model constant factor
  double cf_lat = 1.0;      ///< latency-model constant factor
  double bw_peak_nvm = 0.0; ///< measured peak NVM bandwidth (bytes/s)
  double t1 = 0.80;         ///< >= t1 * peak  => bandwidth-sensitive
  double t2 = 0.10;         ///< <= t2 * peak  => latency-sensitive
};

enum class Sensitivity { Bandwidth, Latency, Mixed };

/// Stable lowercase names used in exports (explain JSON, analyzer tables).
constexpr const char* to_string(Sensitivity s) noexcept {
  switch (s) {
    case Sensitivity::Bandwidth:
      return "bandwidth";
    case Sensitivity::Latency:
      return "latency";
    case Sensitivity::Mixed:
      return "mixed";
  }
  return "mixed";
}

class PerfModel {
 public:
  PerfModel(ModelConstants constants, memsim::DeviceModel dram,
            memsim::DeviceModel nvm, double copy_engine_bw,
            std::uint64_t sample_interval);

  const ModelConstants& constants() const noexcept { return constants_; }

  /// Eq. (1): estimated main-memory bandwidth consumption of a data unit
  /// during a phase of duration `phase_seconds`:
  ///   accessed bytes / (active fraction of phase time).
  double bandwidth_estimate(const memsim::SampledCounts& s,
                            double phase_seconds) const;

  /// Threshold classification against the measured peak NVM bandwidth.
  Sensitivity classify(double bw_estimate) const;

  /// Eq. (2)/(4): predicted per-phase benefit of moving a bandwidth-
  /// sensitive unit from NVM to DRAM. With `distinguish_rw` the
  /// asymmetric read/write bandwidths of NVM are modeled (Eq. (4));
  /// without, all traffic is charged at the NVM read bandwidth (Eq. (2)).
  double benefit_bw(const memsim::SampledCounts& s, bool distinguish_rw) const;

  /// Eq. (3)/(5): latency-sensitivity analogue.
  double benefit_lat(const memsim::SampledCounts& s,
                     bool distinguish_rw) const;

  /// Full benefit: classify by Eq. (1) and pick the matching equation;
  /// Mixed takes max(benefit_bw, benefit_lat), per the paper.
  double benefit(const memsim::SampledCounts& s, double phase_seconds,
                 bool distinguish_rw) const;

  /// Eq. (6): data-movement cost after subtracting the overlappable
  /// window: max(copy_seconds - overlap_window, 0). `to_dram` selects the
  /// direction (asymmetric NVM makes NVM-bound copies slower).
  double movement_cost(std::uint64_t bytes, double overlap_window,
                       bool to_dram = true) const;

  /// Raw copy time: bytes over the direction's effective bandwidth —
  /// min(copy engine, source read bandwidth, destination write bandwidth).
  double copy_seconds(std::uint64_t bytes, bool to_dram = true) const;

 private:
  ModelConstants constants_;
  memsim::DeviceModel dram_;
  memsim::DeviceModel nvm_;
  double copy_bw_;
  std::uint64_t interval_;
};

}  // namespace tahoe::core
