// Lightweight performance models (Eqs. (1)–(6) of the paper line).
//
// Everything here consumes only (a) sampled counter data, (b) device
// datasheet numbers, and (c) two constant factors CF_bw / CF_lat measured
// once per machine by offline calibration (calibration.hpp). The models
// deliberately ignore caching and overlap effects — the constant factors
// are the paper's mechanism for absorbing that inaccuracy cheaply.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/device.hpp"
#include "memsim/machine.hpp"
#include "memsim/sampler.hpp"

namespace tahoe::core {

struct ModelConstants {
  double cf_bw = 1.0;       ///< bandwidth-model constant factor
  double cf_lat = 1.0;      ///< latency-model constant factor
  double bw_peak_nvm = 0.0; ///< measured peak NVM bandwidth (bytes/s)
  double t1 = 0.80;         ///< >= t1 * peak  => bandwidth-sensitive
  double t2 = 0.10;         ///< <= t2 * peak  => latency-sensitive
};

enum class Sensitivity { Bandwidth, Latency, Mixed };

/// Stable lowercase names used in exports (explain JSON, analyzer tables).
constexpr const char* to_string(Sensitivity s) noexcept {
  switch (s) {
    case Sensitivity::Bandwidth:
      return "bandwidth";
    case Sensitivity::Latency:
      return "latency";
    case Sensitivity::Mixed:
      return "mixed";
  }
  return "mixed";
}

class PerfModel {
 public:
  PerfModel(ModelConstants constants, memsim::DeviceModel dram,
            memsim::DeviceModel nvm, double copy_engine_bw,
            std::uint64_t sample_interval);

  /// N-tier construction: models every tier of `machine`, including its
  /// per-pair copy-engine limits. On a two-tier machine this is
  /// numerically identical to the (dram, nvm) constructor.
  PerfModel(ModelConstants constants, const memsim::Machine& machine);

  const ModelConstants& constants() const noexcept { return constants_; }

  std::size_t num_tiers() const noexcept { return tiers_.size(); }
  const memsim::DeviceModel& tier(memsim::TierId t) const {
    return tiers_.at(t);
  }

  /// Eq. (1): estimated main-memory bandwidth consumption of a data unit
  /// during a phase of duration `phase_seconds`:
  ///   accessed bytes / (active fraction of phase time).
  double bandwidth_estimate(const memsim::SampledCounts& s,
                            double phase_seconds) const;

  /// Threshold classification against the measured peak NVM bandwidth.
  Sensitivity classify(double bw_estimate) const;

  /// Eq. (2)/(4): predicted per-phase benefit of moving a bandwidth-
  /// sensitive unit from NVM to DRAM. With `distinguish_rw` the
  /// asymmetric read/write bandwidths of NVM are modeled (Eq. (4));
  /// without, all traffic is charged at the NVM read bandwidth (Eq. (2)).
  double benefit_bw(const memsim::SampledCounts& s, bool distinguish_rw) const;

  /// Eq. (3)/(5): latency-sensitivity analogue.
  double benefit_lat(const memsim::SampledCounts& s,
                     bool distinguish_rw) const;

  /// Full benefit: classify by Eq. (1) and pick the matching equation;
  /// Mixed takes max(benefit_bw, benefit_lat), per the paper.
  double benefit(const memsim::SampledCounts& s, double phase_seconds,
                 bool distinguish_rw) const;

  /// Eq. (6): data-movement cost after subtracting the overlappable
  /// window: max(copy_seconds - overlap_window, 0). `to_dram` selects the
  /// direction (asymmetric NVM makes NVM-bound copies slower).
  double movement_cost(std::uint64_t bytes, double overlap_window,
                       bool to_dram = true) const;

  /// Raw copy time: bytes over the direction's effective bandwidth —
  /// min(copy engine, source read bandwidth, destination write bandwidth).
  double copy_seconds(std::uint64_t bytes, bool to_dram = true) const;

  // ---- Tier-pair generalizations (N-tier hierarchies). On a two-tier
  // machine, (src=kNvm, dst=kDram) reproduces the to_dram=true overloads
  // exactly and (src=kDram, dst=kNvm) the to_dram=false ones.

  /// Eq. (2)/(4) generalized: benefit of serving the unit's traffic from
  /// tier `dst` instead of tier `src` under the bandwidth model.
  double benefit_bw_pair(const memsim::SampledCounts& s, bool distinguish_rw,
                         memsim::TierId src, memsim::TierId dst) const;

  /// Eq. (3)/(5) generalized: latency-model analogue.
  double benefit_lat_pair(const memsim::SampledCounts& s, bool distinguish_rw,
                          memsim::TierId src, memsim::TierId dst) const;

  /// Full benefit for a src->dst move: classify and pick the equation.
  double benefit_pair(const memsim::SampledCounts& s, double phase_seconds,
                      bool distinguish_rw, memsim::TierId src,
                      memsim::TierId dst) const;

  /// Eq. (6) generalized to an arbitrary tier pair.
  double movement_cost_pair(std::uint64_t bytes, double overlap_window,
                            memsim::TierId src, memsim::TierId dst) const;

  /// Raw copy time for a src->dst move using the pair's copy-engine limit.
  double copy_seconds_pair(std::uint64_t bytes, memsim::TierId src,
                           memsim::TierId dst) const;

 private:
  double pair_copy_bw(memsim::TierId src, memsim::TierId dst) const noexcept;

  ModelConstants constants_;
  /// Ordered tier models, fastest first; two-tier machines store
  /// {dram, nvm}. The legacy two-argument methods read tiers_.front() and
  /// tiers_.back().
  std::vector<memsim::DeviceModel> tiers_;
  double copy_bw_;
  std::vector<memsim::CopyPathLimit> copy_paths_;
  std::uint64_t interval_;
};

}  // namespace tahoe::core
