// TahoePolicy: the paper's placement planner.
//
// Workflow (Section "data placement decision and enforcement" of the paper
// line, re-targeted to task groups):
//
//  1. For each group, every profiled data unit gets an Eq. (7) weight
//     w = BFT - COST - extra_COST, where BFT comes from the calibrated
//     performance models (Eqs. (1)-(5)), COST from Eq. (6) with the
//     overlap window derived from the task graph's last-reference
//     analysis, and extra_COST from the evictions needed to make room.
//  2. Per-group 0/1 knapsacks produce the *phase-local* plan; a single
//     knapsack over per-unit benefits summed across groups produces the
//     *cross-phase global* plan.
//  3. The plan with the larger predicted per-iteration gain wins and is
//     compiled into a cyclic ScheduledCopy list (with a preamble that
//     reconciles the decision-time placement on the first enforcement
//     iteration).
#pragma once

#include <optional>

#include "core/perf_model.hpp"
#include "core/policy.hpp"

namespace tahoe::core {

struct TahoeOptions {
  /// Account for NVM read/write asymmetry (Eqs. (4)/(5)); disabling
  /// reproduces the "w.o drw" ablation (Eqs. (2)/(3)).
  bool distinguish_rw = true;
  /// Force a strategy instead of letting predicted gain choose
  /// (for the technique-contribution ablation).
  enum class Strategy { Auto, GlobalOnly, LocalOnly };
  Strategy strategy = Strategy::Auto;
  /// Sensitivity thresholds (fractions of peak NVM bandwidth).
  double t1 = 0.80;
  double t2 = 0.10;
  /// When false, disable lookahead: every copy triggers exactly when it is
  /// needed, exposing the full movement cost (the proactive-migration
  /// ablation).
  bool proactive = true;
};

class TahoePolicy : public Policy {
 public:
  /// `constants` comes from offline calibration (calibrate()).
  TahoePolicy(ModelConstants constants, TahoeOptions options = {});

  std::string name() const override { return "tahoe"; }
  bool needs_profiling() const override { return true; }
  PlanDecision decide(const PlanInputs& in) override;

 private:
  /// N-tier planning path (machines with more than two tiers): per-group
  /// and cross-phase multi-choice knapsacks over every constrained tier.
  /// The two-tier path in decide() is kept separate and untouched so its
  /// numeric behavior (and the byte-stable reports built on it) cannot
  /// drift.
  PlanDecision decide_multi(const PlanInputs& in);

  ModelConstants constants_;
  TahoeOptions options_;
};

/// Per-unit, per-group weight details — exposed for tests and the
/// ablation benches.
struct UnitWeight {
  UnitKey unit;
  double benefit = 0.0;
  double cost = 0.0;
  double extra_cost = 0.0;
  Sensitivity sensitivity = Sensitivity::Mixed;
  double weight() const noexcept { return benefit - cost - extra_cost; }
};

/// Compute the Eq. (7) weight table for one group given the plan state
/// (DRAM residents before the group). Exposed for testing.
std::vector<UnitWeight> group_weights(
    const PlanInputs& in, const PerfModel& model, task::GroupId g,
    const std::vector<UnitKey>& residents_before, bool distinguish_rw);

}  // namespace tahoe::core
