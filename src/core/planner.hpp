// TahoePolicy: the paper's placement planner.
//
// Workflow (Section "data placement decision and enforcement" of the paper
// line, re-targeted to task groups):
//
//  1. For each group, every profiled data unit gets an Eq. (7) weight
//     w = BFT - COST - extra_COST, where BFT comes from the calibrated
//     performance models (Eqs. (1)-(5)), COST from Eq. (6) with the
//     overlap window derived from the task graph's last-reference
//     analysis, and extra_COST from the evictions needed to make room.
//  2. Per-group 0/1 knapsacks produce the *phase-local* plan; a single
//     knapsack over per-unit benefits summed across groups produces the
//     *cross-phase global* plan.
//  3. The plan with the larger predicted per-iteration gain wins and is
//     compiled into a cyclic ScheduledCopy list (with a preamble that
//     reconciles the decision-time placement on the first enforcement
//     iteration).
#pragma once

#include <optional>

#include "core/perf_model.hpp"
#include "core/policy.hpp"

namespace tahoe::core {

struct TahoeOptions {
  /// Account for NVM read/write asymmetry (Eqs. (4)/(5)); disabling
  /// reproduces the "w.o drw" ablation (Eqs. (2)/(3)).
  bool distinguish_rw = true;
  /// Force a strategy instead of letting predicted gain choose
  /// (for the technique-contribution ablation).
  enum class Strategy { Auto, GlobalOnly, LocalOnly };
  Strategy strategy = Strategy::Auto;
  /// Sensitivity thresholds (fractions of peak NVM bandwidth).
  double t1 = 0.80;
  double t2 = 0.10;
  /// When false, disable lookahead: every copy triggers exactly when it is
  /// needed, exposing the full movement cost (the proactive-migration
  /// ablation).
  bool proactive = true;
};

class TahoePolicy : public Policy {
 public:
  /// `constants` comes from offline calibration (calibrate()).
  TahoePolicy(ModelConstants constants, TahoeOptions options = {});

  std::string name() const override { return "tahoe"; }
  bool needs_profiling() const override { return true; }
  PlanDecision decide(const PlanInputs& in) override;

 private:
  /// N-tier planning path (machines with more than two tiers): per-group
  /// and cross-phase multi-choice knapsacks over every constrained tier.
  /// The two-tier path in decide() is kept separate and untouched so its
  /// numeric behavior (and the byte-stable reports built on it) cannot
  /// drift.
  PlanDecision decide_multi(const PlanInputs& in);

  ModelConstants constants_;
  TahoeOptions options_;
};

/// Per-unit, per-group weight details — exposed for tests and the
/// ablation benches.
struct UnitWeight {
  UnitKey unit;
  double benefit = 0.0;
  double cost = 0.0;
  double extra_cost = 0.0;
  Sensitivity sensitivity = Sensitivity::Mixed;
  double weight() const noexcept { return benefit - cost - extra_cost; }
};

/// Compute the Eq. (7) weight table for one group given the plan state
/// (DRAM residents before the group). Exposed for testing.
std::vector<UnitWeight> group_weights(
    const PlanInputs& in, const PerfModel& model, task::GroupId g,
    const std::vector<UnitKey>& residents_before, bool distinguish_rw);

// ---- Multi-tenant serving plan (per-tenant capacity rows). ----
//
// The serving subsystem (src/serve/) registers N concurrent applications
// against one machine. Planning is the multi-tenant variant of the
// knapsack: every tenant contributes fast-tier promotion candidates, and
// the shared fast tier is arbitrated under per-tenant capacity rows
// (quotas) with priority-weighted values (core::solve_tenant_rows). The
// quota-free baseline runs the same candidates through the plain shared
// 0/1 knapsack, blind to tenants and priorities.

/// One fast-tier promotion candidate of a tenant. `value` is the modeled
/// seconds saved per second of request traffic when the unit is served
/// from the fast tier instead of the capacity tier.
struct TenantUnitCandidate {
  UnitKey unit;
  std::uint64_t bytes = 0;
  double value = 0.0;
};

struct TenantDemand {
  std::string name;
  double priority = 1.0;
  /// Per-tenant capacity row in bytes; 0 derives the row from the
  /// tenant's priority share of the fast tier (derive_tenant_quotas).
  std::uint64_t quota_bytes = 0;
  std::vector<TenantUnitCandidate> candidates;
};

struct TenantPlacementPlan {
  /// Units placed on the fast tier, per tenant (same order as the input).
  std::vector<std::vector<UnitKey>> promoted;
  std::vector<std::uint64_t> quota_bytes;    ///< effective rows used
  std::vector<std::uint64_t> planned_bytes;  ///< fast-tier bytes per tenant
  double total_value = 0.0;  ///< priority-weighted (QoS) or raw (quota-free)
};

/// Priority-proportional split of the fast tier: tenant i gets
/// floor(capacity * priority_i / sum(priorities)) bytes. Deterministic;
/// the rounding remainder stays unreserved (the shared-capacity DP may
/// still hand it to any tenant within its row).
std::vector<std::uint64_t> derive_tenant_quotas(
    std::uint64_t fast_capacity, const std::vector<double>& priorities);

/// Plan fast-tier residency for N tenants sharing `fast_capacity` bytes.
/// With `enforce_quotas`, per-tenant rows and priorities arbitrate the
/// tier (multi-tenant knapsack); without, one shared knapsack over all
/// candidates ignores tenancy entirely.
TenantPlacementPlan plan_tenants(const std::vector<TenantDemand>& tenants,
                                 std::uint64_t fast_capacity,
                                 bool enforce_quotas);

}  // namespace tahoe::core
