// Initial data placement from static (compiler-analysis style) reference
// estimates.
//
// By default every object starts on NVM. With the optimization enabled,
// the objects with the largest estimated reference counts are placed in
// DRAM at allocation time (a knapsack over the DRAM capacity with the
// static estimates as values), which costs nothing at runtime and reduces
// the first-enforcement migration volume. Objects whose reference count
// cannot be estimated statically (estimate == 0) stay on NVM, as in the
// paper.
#pragma once

#include <cstdint>
#include <vector>

#include "core/policy.hpp"
#include "hms/placement.hpp"

namespace tahoe::core {

/// Unit-level DRAM choice: returns the (object, chunk) units to place in
/// DRAM at allocation time. Chunked objects distribute the object estimate
/// over chunks proportionally to chunk size.
std::vector<UnitKey> choose_initial_dram(const std::vector<ObjectInfo>& objects,
                                         std::uint64_t dram_capacity);

/// N-tier generalization: waterfall the static estimates over every
/// constrained tier, fastest first — the tier-0 knapsack gets first pick,
/// remaining units cascade to the next tier, and whatever is left stays on
/// the capacity tier. Returns (unit, tier) pairs for the constrained
/// tiers only.
std::vector<std::pair<UnitKey, memsim::TierId>> choose_initial_tiers(
    const std::vector<ObjectInfo>& objects, const memsim::Machine& machine);

}  // namespace tahoe::core
