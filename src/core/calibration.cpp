#include "core/calibration.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "hms/placement.hpp"
#include "task/graph.hpp"
#include "task/sim_executor.hpp"

namespace tahoe::core {
namespace {

constexpr hms::ObjectId kCalArray = 0;
constexpr std::uint64_t kStreamBytes = 256 * kMiB;
constexpr std::uint64_t kChaseBytes = 64 * kMiB;

struct MicroResult {
  double duration = 0.0;
  memsim::SampledCounts counts;
};

/// Run a one-group synthetic graph on the given tier and sample it.
MicroResult run_micro(const memsim::Machine& machine, memsim::DeviceId tier,
                      unsigned tasks, const memsim::ObjectTraffic& per_task) {
  task::GraphBuilder gb;
  gb.begin_group("cal");
  for (unsigned i = 0; i < tasks; ++i) {
    task::Task t;
    t.label = "cal-task";
    t.compute_seconds = 0.0;
    task::DataAccess a;
    a.object = kCalArray;
    a.chunk = 0;
    a.mode = per_task.stores > 0 ? task::AccessMode::ReadWrite
                                 : task::AccessMode::Read;
    a.traffic = per_task;
    t.accesses.push_back(a);
    gb.add_task(std::move(t));
  }
  const task::TaskGraph graph = gb.build();

  hms::PlacementMap placement;
  placement.set(kCalArray, 0, tier);

  task::SimExecutor exec;
  task::SimExecutor::Options opts;
  opts.check_capacity = false;  // synthetic object is not in a registry
  const task::SimReport report =
      exec.run(graph, machine, placement, {}, opts);

  memsim::Sampler sampler(machine.sample_interval, machine.cpu_hz,
                          machine.seed ^ 0xca11b4a7e5eedULL);
  MicroResult out;
  out.duration = report.makespan;
  for (const task::Task& t : graph.tasks()) {
    const memsim::SampledCounts s =
        sampler.sample(t.accesses.front().traffic, report.task_seconds[t.id]);
    out.counts.loads += s.loads;
    out.counts.stores += s.stores;
    out.counts.samples_with_access += s.samples_with_access;
    out.counts.total_samples += s.total_samples;
  }
  return out;
}

memsim::ObjectTraffic stream_traffic(std::uint64_t bytes, unsigned tasks) {
  // STREAM copy-like: read one element, write one element, no reuse, no
  // dependent chains.
  memsim::ObjectTraffic t;
  const std::uint64_t elems = bytes / sizeof(double) / tasks;
  t.loads = elems;
  t.stores = elems;
  t.footprint = bytes / tasks;
  t.dep_frac = 0.0;
  t.locality = 0.0;
  return t;
}

memsim::ObjectTraffic chase_traffic(std::uint64_t bytes) {
  // One fully dependent chain over the whole array, loads only.
  memsim::ObjectTraffic t;
  t.loads = bytes / kCacheLine;
  t.stores = 0;
  t.footprint = bytes;
  t.dep_frac = 1.0;
  t.locality = 0.0;
  t.spatial = 0.0;  // every hop lands on a fresh line
  return t;
}

}  // namespace

CalibrationResult calibrate(const memsim::Machine& machine) {
  CalibrationResult result;
  const std::uint64_t interval = machine.sample_interval;
  const double line = static_cast<double>(kCacheLine);

  // ---- Peak bandwidth via Eq. (1): STREAM at maximum concurrency. ----
  for (const memsim::DeviceId tier : {memsim::kDram, memsim::kNvm}) {
    const MicroResult r = run_micro(machine, tier, machine.workers,
                                    stream_traffic(kStreamBytes,
                                                   machine.workers));
    TAHOE_ASSERT(r.duration > 0.0, "calibration run took no time");
    const double active = r.counts.active_fraction();
    const double est_bytes =
        (r.counts.est_loads(interval) + r.counts.est_stores(interval)) * line;
    const double bw = est_bytes / (std::max(active, 1e-9) * r.duration);
    if (tier == memsim::kDram) {
      result.bw_peak_dram = bw;
    } else {
      result.bw_peak_nvm = bw;
    }
  }

  // ---- CF_bw: STREAM on DRAM, measured / predicted. ----
  {
    const MicroResult r =
        run_micro(machine, memsim::kDram, 1, stream_traffic(kStreamBytes, 1));
    const double predicted =
        (r.counts.est_loads(interval) + r.counts.est_stores(interval)) * line /
        machine.tier(memsim::kDram).read_bw;
    TAHOE_ASSERT(predicted > 0.0, "CF_bw prediction degenerate");
    result.cf_bw = r.duration / predicted;
  }

  // ---- CF_lat: pointer chase on DRAM, measured / predicted. ----
  {
    const MicroResult r =
        run_micro(machine, memsim::kDram, 1, chase_traffic(kChaseBytes));
    const double predicted =
        r.counts.est_loads(interval) * machine.tier(memsim::kDram).read_lat_s;
    TAHOE_ASSERT(predicted > 0.0, "CF_lat prediction degenerate");
    result.cf_lat = r.duration / predicted;
  }

  return result;
}

}  // namespace tahoe::core
