#include "core/initial_placement.hpp"

#include "core/knapsack.hpp"

namespace tahoe::core {

std::vector<UnitKey> choose_initial_dram(const std::vector<ObjectInfo>& objects,
                                         std::uint64_t dram_capacity) {
  std::vector<UnitKey> units;
  std::vector<KnapsackItem> items;
  for (const ObjectInfo& o : objects) {
    if (o.static_ref_estimate <= 0.0) continue;  // statically unknown
    const double total = static_cast<double>(o.total_bytes());
    for (std::size_t c = 0; c < o.chunk_bytes.size(); ++c) {
      const std::uint64_t bytes = o.chunk_bytes[c];
      if (bytes == 0) continue;
      units.push_back(UnitKey{o.id, c});
      items.push_back(KnapsackItem{
          bytes,
          o.static_ref_estimate * static_cast<double>(bytes) / total});
    }
  }
  const KnapsackResult sol = solve(items, dram_capacity);
  std::vector<UnitKey> chosen;
  chosen.reserve(sol.chosen.size());
  for (std::size_t idx : sol.chosen) chosen.push_back(units[idx]);
  return chosen;
}

std::vector<std::pair<UnitKey, memsim::TierId>> choose_initial_tiers(
    const std::vector<ObjectInfo>& objects, const memsim::Machine& machine) {
  std::vector<UnitKey> units;
  std::vector<KnapsackItem> items;
  for (const ObjectInfo& o : objects) {
    if (o.static_ref_estimate <= 0.0) continue;  // statically unknown
    const double total = static_cast<double>(o.total_bytes());
    for (std::size_t c = 0; c < o.chunk_bytes.size(); ++c) {
      const std::uint64_t bytes = o.chunk_bytes[c];
      if (bytes == 0) continue;
      units.push_back(UnitKey{o.id, c});
      items.push_back(KnapsackItem{
          bytes,
          o.static_ref_estimate * static_cast<double>(bytes) / total});
    }
  }

  std::vector<std::pair<UnitKey, memsim::TierId>> out;
  std::vector<bool> taken(items.size(), false);
  for (memsim::TierId t = 0; t < machine.capacity_tier(); ++t) {
    std::vector<std::size_t> remaining;
    std::vector<KnapsackItem> pool;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (!taken[i]) {
        remaining.push_back(i);
        pool.push_back(items[i]);
      }
    }
    if (pool.empty()) break;
    const KnapsackResult sol = solve(pool, machine.tier(t).capacity);
    for (std::size_t idx : sol.chosen) {
      taken[remaining[idx]] = true;
      out.emplace_back(units[remaining[idx]], t);
    }
  }
  return out;
}

}  // namespace tahoe::core
