// 0/1 knapsack solvers for the data-placement decision.
//
// Items are data units (object chunks) with size = bytes and value = the
// Eq. (7) weight w = BFT - COST - extra_COST; capacity is the DRAM tier
// size. Three solvers:
//   * solve():       scaled dynamic programming (default; pseudo-polynomial
//                    with byte sizes quantized to a capacity grid),
//   * solve_greedy(): value-density heuristic for very large instances,
//   * solve_exact(): exhaustive search, used by property tests as oracle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tahoe::core {

struct KnapsackItem {
  std::uint64_t size = 0;
  double value = 0.0;
};

struct KnapsackResult {
  std::vector<std::size_t> chosen;  ///< indices into the item span, ascending
  double total_value = 0.0;
  std::uint64_t total_size = 0;
};

/// Scaled DP. `grid` controls quantization: sizes are rounded *up* to
/// capacity/grid granules, so the capacity constraint is never violated
/// (solutions can only be slightly conservative). Items with value <= 0 or
/// size > capacity are never chosen.
KnapsackResult solve(std::span<const KnapsackItem> items,
                     std::uint64_t capacity, std::uint32_t grid = 2048);

/// Greedy by value density (value/size), deterministic tie-breaks.
KnapsackResult solve_greedy(std::span<const KnapsackItem> items,
                            std::uint64_t capacity);

/// Exhaustive oracle; requires items.size() <= 24.
KnapsackResult solve_exact(std::span<const KnapsackItem> items,
                           std::uint64_t capacity);

}  // namespace tahoe::core
