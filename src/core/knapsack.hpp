// 0/1 knapsack solvers for the data-placement decision.
//
// Items are data units (object chunks) with size = bytes and value = the
// Eq. (7) weight w = BFT - COST - extra_COST; capacity is the DRAM tier
// size. Three solvers:
//   * solve():       scaled dynamic programming (default; pseudo-polynomial
//                    with byte sizes quantized to a capacity grid),
//   * solve_greedy(): value-density heuristic for very large instances,
//   * solve_exact(): exhaustive search, used by property tests as oracle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tahoe::core {

struct KnapsackItem {
  std::uint64_t size = 0;
  double value = 0.0;
};

struct KnapsackResult {
  std::vector<std::size_t> chosen;  ///< indices into the item span, ascending
  double total_value = 0.0;
  std::uint64_t total_size = 0;
};

/// Scaled DP. `grid` controls quantization: sizes are rounded *up* to
/// capacity/grid granules, so the capacity constraint is never violated
/// (solutions can only be slightly conservative). Items with value <= 0 or
/// size > capacity are never chosen.
KnapsackResult solve(std::span<const KnapsackItem> items,
                     std::uint64_t capacity, std::uint32_t grid = 2048);

/// Greedy by value density (value/size), deterministic tie-breaks.
KnapsackResult solve_greedy(std::span<const KnapsackItem> items,
                            std::uint64_t capacity);

/// Exhaustive oracle; requires items.size() <= 24.
KnapsackResult solve_exact(std::span<const KnapsackItem> items,
                           std::uint64_t capacity);

// ---- Multi-choice knapsack (MCKP) for N-tier placement. ----
//
// Each item is one data unit; it is assigned to exactly one of T
// *constrained* tiers (each with its own capacity) or to the unconstrained
// capacity tier (the implicit "skip" choice, value 0). values[t] is the
// Eq. (7) weight of placing the unit on constrained tier t instead of
// leaving it on the capacity tier. With T = 1 this degenerates to the 0/1
// knapsack above.

struct MultiTierItem {
  std::uint64_t size = 0;
  std::vector<double> values;  ///< one weight per constrained tier
};

struct MultiTierResult {
  /// assignment[i] = constrained-tier index in [0, T), or -1 for the
  /// capacity tier. Same length as the item span.
  std::vector<int> assignment;
  double total_value = 0.0;
  std::vector<std::uint64_t> tier_sizes;  ///< bytes per constrained tier
};

/// Scaled multi-dimensional DP. Sizes are rounded *up* to per-tier
/// granules, so no tier capacity is ever violated. The per-tier grid is
/// derived from `state_budget` (total DP states allowed), keeping the
/// state space bounded for any tier count. Choices with value <= 0 are
/// never taken.
MultiTierResult solve_multi(std::span<const MultiTierItem> items,
                            std::span<const std::uint64_t> capacities,
                            std::size_t state_budget = 1 << 18);

/// Exhaustive oracle: enumerates all (T+1)^n assignments. Requires
/// (T+1)^n <= 2^24.
MultiTierResult solve_multi_exact(std::span<const MultiTierItem> items,
                                  std::span<const std::uint64_t> capacities);

// ---- Multi-tenant knapsack with per-tenant capacity rows. ----
//
// The serving scenario: one constrained fast tier shared by N concurrent
// applications (tenants). Each tenant owns a subset of the items and is
// bounded by its own capacity row (quota) *in addition to* the shared
// tier capacity, and its item values are scaled by the tenant's priority
// before arbitration. The solver decomposes into one per-tenant 0/1 DP
// (within the quota row) plus a DP across tenants that splits the shared
// capacity — exact up to the capacity-grid quantization.

struct TenantItem {
  std::uint64_t size = 0;
  double value = 0.0;        ///< un-weighted Eq. (7)-style value
  std::uint32_t tenant = 0;  ///< index into the quota-row span
};

struct TenantRow {
  std::uint64_t quota = 0;   ///< hard cap on this tenant's bytes on the tier
  double priority = 1.0;     ///< value multiplier during arbitration
};

struct TenantKnapsackResult {
  std::vector<std::size_t> chosen;  ///< indices into the item span, ascending
  double total_value = 0.0;         ///< priority-weighted objective
  std::uint64_t total_size = 0;
  std::vector<std::uint64_t> tenant_sizes;  ///< bytes per tenant row
};

/// Scaled DP. Sizes are rounded *up* to capacity/grid granules and quotas
/// rounded *down* to whole granules, so neither the shared capacity nor
/// any tenant row is ever violated. Items with value <= 0, items larger
/// than their tenant's row, and items of tenants with a zero quota are
/// never chosen.
TenantKnapsackResult solve_tenant_rows(std::span<const TenantItem> items,
                                       std::uint64_t capacity,
                                       std::span<const TenantRow> rows,
                                       std::uint32_t grid = 2048);

/// Exhaustive oracle; requires items.size() <= 20.
TenantKnapsackResult solve_tenant_rows_exact(std::span<const TenantItem> items,
                                             std::uint64_t capacity,
                                             std::span<const TenantRow> rows);

}  // namespace tahoe::core
