// Online phase profiles: what the runtime learns during the profiling
// iterations.
//
// During the first iterations of the main computation loop, every task
// execution is "observed" through the sampling-counter emulation: for each
// (group, object-chunk) pair we accumulate sampled load/store events and
// the sample-occupancy numbers that feed the Eq. (1) bandwidth estimator,
// plus each group's execution time. This is the only information the
// placement planner is allowed to use — ground truth stays inside the
// simulator.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hms/data_object.hpp"
#include "memsim/sampler.hpp"
#include "task/graph.hpp"
#include "task/sim_executor.hpp"

namespace tahoe::core {

struct UnitKey {
  hms::ObjectId object = hms::kInvalidObject;
  std::size_t chunk = 0;

  auto operator<=>(const UnitKey&) const = default;
};

struct GroupProfile {
  double duration_seconds = 0.0;  ///< accumulated over profiled iterations
  std::map<UnitKey, memsim::SampledCounts> units;
};

struct PhaseProfiles {
  std::vector<GroupProfile> groups;
  std::size_t iterations_profiled = 0;

  /// Mean group duration per profiled iteration.
  double group_duration(task::GroupId g) const;
};

/// Accumulates profiles across profiling iterations.
class Profiler {
 public:
  explicit Profiler(memsim::Sampler sampler) : sampler_(std::move(sampler)) {}

  /// Observe one executed iteration: sample every task's accesses using
  /// the simulated task durations, and record group times.
  void observe(const task::TaskGraph& graph, const task::SimReport& report);

  const PhaseProfiles& profiles() const noexcept { return profiles_; }
  void reset() { profiles_ = PhaseProfiles{}; }

  /// Number of samples taken so far (for overhead accounting).
  std::uint64_t samples_taken() const noexcept { return samples_taken_; }

 private:
  memsim::Sampler sampler_;
  PhaseProfiles profiles_;
  std::uint64_t samples_taken_ = 0;
};

}  // namespace tahoe::core
